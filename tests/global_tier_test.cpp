#include "src/core/global_tier.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl::core {
namespace {

DrlAllocatorOptions small_opts() {
  DrlAllocatorOptions o;
  o.qnet.encoder.num_servers = 6;
  o.qnet.encoder.num_groups = 2;
  o.qnet.encoder.num_resources = 3;
  o.qnet.autoencoder_dims = {8, 4};
  o.qnet.subq_hidden = 16;
  o.min_replay_before_training = 32;
  o.batch_size = 8;
  o.replay_capacity = 1000;
  return o;
}

std::vector<sim::Job> small_trace(std::size_t n) {
  workload::GeneratorOptions g;
  g.num_jobs = n;
  g.horizon_s = static_cast<double>(n) * 8.0;
  g.seed = 5;
  return workload::GoogleTraceGenerator(g).generate();
}

TEST(DrlAllocatorOptions, Validation) {
  EXPECT_NO_THROW(small_opts().validate());
  auto o = small_opts();
  o.beta = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.w_power = -1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.train_interval = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(DrlAllocator, SelectsValidServersAndCountsEpochs) {
  DrlAllocator alloc(small_opts());
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(small_trace(200));
  cluster.run();
  EXPECT_EQ(alloc.decision_epochs(), 200);
  EXPECT_EQ(cluster.metrics().jobs_completed(), 200u);
}

TEST(DrlAllocator, TrainsOnceReplayWarm) {
  DrlAllocator alloc(small_opts());
  sim::ImmediateSleepPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(small_trace(400));
  cluster.run();
  EXPECT_GT(alloc.train_steps(), 10);
  EXPECT_GE(alloc.last_loss(), 0.0);
}

TEST(DrlAllocator, LearningOffFreezesAndActsGreedily) {
  DrlAllocator alloc(small_opts());
  alloc.set_learning(false);
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(small_trace(100));
  cluster.run();
  EXPECT_EQ(alloc.train_steps(), 0);
  EXPECT_EQ(alloc.decision_epochs(), 100);
}

TEST(DrlAllocator, EpsilonDecaysWithEpochs) {
  auto o = small_opts();
  o.epsilon = rl::EpsilonSchedule::linear(1.0, 0.0, 100);
  DrlAllocator alloc(o);
  EXPECT_DOUBLE_EQ(alloc.current_epsilon(), 1.0);
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(small_trace(150));
  cluster.run();
  EXPECT_DOUBLE_EQ(alloc.current_epsilon(), 0.0);
}

TEST(DrlAllocator, GuidePolicyIsConsultedDuringExploration) {
  class CountingGuide final : public sim::AllocationPolicy {
   public:
    sim::ServerId select_server(const sim::ClusterView&, const sim::Job&) override {
      ++calls;
      return 0;
    }
    std::string name() const override { return "counting"; }
    int calls = 0;
  };
  auto o = small_opts();
  o.epsilon = rl::EpsilonSchedule::constant(1.0);  // always explore
  o.guide_mix = 1.0;                               // always via guide
  DrlAllocator alloc(o);
  auto guide = std::make_unique<CountingGuide>();
  CountingGuide* guide_view = guide.get();
  alloc.set_guide(std::move(guide));
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(small_trace(50));
  cluster.run();
  EXPECT_EQ(guide_view->calls, 50);
}

TEST(DrlAllocator, EndEpisodeResetsSojourn) {
  DrlAllocator alloc(small_opts());
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  {
    sim::Cluster cluster(cfg, alloc, power);
    cluster.load_jobs(small_trace(50));
    cluster.run();  // on_simulation_end -> end_episode
  }
  // A second, independent simulation must not throw (no stale transition
  // spanning the two runs, whose metric integrals would go backwards).
  sim::Cluster cluster2(cfg, alloc, power);
  cluster2.load_jobs(small_trace(50));
  EXPECT_NO_THROW(cluster2.run());
}

TEST(DrlAllocator, RewardPrefersLowPowerTrajectories) {
  // Structural check on the reward computation: with only the power term
  // active, the reward rate over any sojourn is -w_power * average power,
  // which is strictly worse (more negative) when more servers are awake.
  auto o = small_opts();
  o.w_vms = 0.0;
  o.w_reliability = 0.0;
  o.w_chosen_queue = 0.0;
  DrlAllocator alloc(o);
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  cfg.server.start_asleep = false;  // 6 idle servers burn 6*87 W
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(small_trace(100));
  cluster.run();
  // All transitions stored in replay have reward_rate <= -w_power * 6 * 87
  // * (some fraction): at minimum strictly negative.
  EXPECT_GT(alloc.train_steps(), 0);
  EXPECT_GE(alloc.last_loss(), 0.0);
}

}  // namespace
}  // namespace hcrl::core
