// Cross-module integration tests: conservation laws and the paper's
// qualitative ordering on a moderately sized trace.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl {
namespace {

core::ExperimentConfig mid_config(core::SystemKind kind, std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.system = kind;
  cfg.num_servers = 12;
  cfg.num_groups = 3;
  cfg.trace.num_jobs = 3000;
  // Same offered load per server as the paper's 95k/week/30 machines.
  cfg.trace.horizon_s = sim::kSecondsPerWeek * 3000.0 / 95000.0 * (30.0 / 12.0);
  cfg.trace.seed = seed;
  cfg.pretrain_jobs = 1000;
  cfg.checkpoint_every_jobs = 0;
  return cfg;
}

// Conservation + sanity invariants must hold under every policy and seed.
class ConservationInvariants
    : public testing::TestWithParam<std::tuple<core::SystemKind, std::uint64_t>> {};

TEST_P(ConservationInvariants, Hold) {
  const auto [kind, seed] = GetParam();
  const core::ExperimentResult r = core::run_experiment(mid_config(kind, seed));
  const auto& s = r.final_snapshot;

  // Every arrived job completes; none is lost or duplicated.
  EXPECT_EQ(s.jobs_arrived, 3000u);
  EXPECT_EQ(s.jobs_completed, 3000u);
  EXPECT_DOUBLE_EQ(s.jobs_in_system, 0.0);

  // Latency for each job is at least its duration; accumulated latency is
  // therefore at least the trace's total duration mass.
  EXPECT_GE(s.accumulated_latency_s,
            r.trace_stats.mean_duration_s * 3000.0 * (1.0 - 1e-9));

  // Energy bounds: non-negative and below all-servers-at-peak-forever.
  EXPECT_GE(s.energy_joules, 0.0);
  EXPECT_LE(s.energy_joules, 12.0 * 145.0 * s.now * 1.001);

  // Average power consistency with energy/time.
  EXPECT_NEAR(s.average_power_watts, s.energy_joules / s.now, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ConservationInvariants,
    testing::Combine(testing::Values(core::SystemKind::kRoundRobin,
                                     core::SystemKind::kDrlOnly,
                                     core::SystemKind::kHierarchical,
                                     core::SystemKind::kFirstFitPacking),
                     testing::Values(1u, 7u)));

// The paper's headline qualitative result (Table I / Figs. 8-9): both DRL
// systems use substantially less energy than round-robin, and round-robin
// has the lowest latency.
TEST(PaperOrdering, DrlSystemsBeatRoundRobinOnEnergy) {
  auto scaled = [](core::SystemKind kind) {
    core::ExperimentConfig cfg = mid_config(kind, 3);
    cfg.trace.num_jobs = 6000;
    cfg.trace.horizon_s *= 2.0;
    cfg.pretrain_jobs = 3000;
    return core::run_experiment(cfg);
  };
  const auto rr = scaled(core::SystemKind::kRoundRobin);
  const auto drl = scaled(core::SystemKind::kDrlOnly);
  const auto hier = scaled(core::SystemKind::kHierarchical);

  // Energy: round-robin (always on) is substantially worse. (The margin at
  // full 95k-job scale is ~40-55%; this test uses a small trace, so assert a
  // conservative 10%+ gap that holds across seeds.)
  EXPECT_LT(drl.final_snapshot.energy_joules, 0.90 * rr.final_snapshot.energy_joules);
  EXPECT_LT(hier.final_snapshot.energy_joules, 0.90 * rr.final_snapshot.energy_joules);

  // Latency: round-robin spreads jobs and has the least queueing/wake-ups.
  EXPECT_LE(rr.final_snapshot.accumulated_latency_s,
            drl.final_snapshot.accumulated_latency_s * 1.001);
  EXPECT_LE(rr.final_snapshot.accumulated_latency_s,
            hier.final_snapshot.accumulated_latency_s * 1.001);
}

TEST(PaperOrdering, JobRecordsAreInternallyConsistent) {
  core::ExperimentConfig cfg = mid_config(core::SystemKind::kHierarchical, 5);
  cfg.trace.num_jobs = 1500;
  cfg.pretrain_jobs = 500;
  const auto result = core::run_experiment(cfg);
  EXPECT_EQ(result.final_snapshot.jobs_completed, 1500u);
}

TEST(WholeStack, DeterministicGivenIdenticalConfig) {
  const auto a = core::run_experiment(mid_config(core::SystemKind::kHierarchical, 11));
  const auto b = core::run_experiment(mid_config(core::SystemKind::kHierarchical, 11));
  EXPECT_DOUBLE_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_DOUBLE_EQ(a.final_snapshot.accumulated_latency_s,
                   b.final_snapshot.accumulated_latency_s);
}

TEST(WholeStack, FixedTimeoutFamilyBracketsImmediateSleep) {
  // Structural relationship on energy: with the same allocator, a fixed
  // 30 s timeout burns at least as much energy as immediate sleep minus
  // transition effects; mostly we assert all variants complete and produce
  // ordered, finite metrics.
  const auto imm = core::run_experiment(mid_config(core::SystemKind::kDrlOnly, 13));
  auto cfg = mid_config(core::SystemKind::kDrlFixedTimeout, 13);
  cfg.fixed_timeout_s = 30.0;
  const auto t30 = core::run_experiment(cfg);
  cfg.fixed_timeout_s = 90.0;
  const auto t90 = core::run_experiment(cfg);
  EXPECT_GT(imm.final_snapshot.energy_joules, 0.0);
  EXPECT_GT(t30.final_snapshot.energy_joules, 0.0);
  // Longer timeout keeps servers idle longer -> at least as much energy as
  // the shorter timeout under the same allocator/seed, up to RL noise in
  // the global tier; allow 5% slack.
  EXPECT_GT(t90.final_snapshot.energy_joules, 0.95 * t30.final_snapshot.energy_joules);
}

}  // namespace
}  // namespace hcrl
