#include "src/nn/layer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/common/rng.hpp"
#include "src/nn/init.hpp"

namespace hcrl::nn {
namespace {

DenseParamsPtr make_params(std::size_t out, std::size_t in, double wfill, double bfill) {
  auto p = std::make_shared<DenseParams>(out, in);
  p->W.fill(wfill);
  for (auto& b : p->b) b = bfill;
  return p;
}

TEST(Dense, ForwardAffine) {
  Dense layer(make_params(2, 3, 1.0, 0.5));
  const Vec y = layer.forward({1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.5);
  EXPECT_DOUBLE_EQ(y[1], 6.5);
  layer.clear_cache();
}

TEST(Dense, BackwardGradients) {
  auto params = make_params(1, 2, 0.0, 0.0);
  params->W(0, 0) = 2.0;
  params->W(0, 1) = -1.0;
  Dense layer(params);
  layer.forward({3.0, 4.0});
  const Vec dx = layer.backward({1.0});
  // dL/dx = W^T dy
  EXPECT_DOUBLE_EQ(dx[0], 2.0);
  EXPECT_DOUBLE_EQ(dx[1], -1.0);
  // dL/dW = dy * x^T; dL/db = dy
  EXPECT_DOUBLE_EQ(params->gW(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(params->gW(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(params->gb[0], 1.0);
}

TEST(Dense, BackwardWithoutForwardThrows) {
  Dense layer(make_params(1, 1, 1.0, 0.0));
  EXPECT_THROW(layer.backward({1.0}), std::logic_error);
}

TEST(Dense, GradientsAccumulateAcrossUses) {
  auto params = make_params(1, 1, 1.0, 0.0);
  Dense layer(params);
  layer.forward({2.0});
  layer.forward({3.0});
  layer.backward({1.0});  // pops the x=3 cache
  layer.backward({1.0});  // pops the x=2 cache
  EXPECT_DOUBLE_EQ(params->gW(0, 0), 5.0);  // 3 + 2
  EXPECT_DOUBLE_EQ(params->gb[0], 2.0);
}

TEST(Dense, SharedParamsBetweenTwoLayers) {
  auto params = make_params(1, 1, 2.0, 0.0);
  Dense a(params), b(params);
  a.forward({1.0});
  b.forward({10.0});
  b.backward({1.0});
  a.backward({1.0});
  EXPECT_DOUBLE_EQ(params->gW(0, 0), 11.0);  // both uses hit the shared grad
}

TEST(Dense, NullParamsThrows) { EXPECT_THROW(Dense(nullptr), std::invalid_argument); }

TEST(Activations, ScalarValues) {
  EXPECT_DOUBLE_EQ(activate(Activation::kIdentity, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 2.0), 2.0);
  EXPECT_NEAR(activate(Activation::kElu, -1.0), std::expm1(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(activate(Activation::kElu, 3.0), 3.0);
  EXPECT_NEAR(activate(Activation::kTanh, 0.5), std::tanh(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(activate(Activation::kSigmoid, 0.0), 0.5);
}

TEST(Activations, GradFromOutputMatchesNumerical) {
  for (Activation kind : {Activation::kIdentity, Activation::kElu, Activation::kTanh,
                          Activation::kSigmoid}) {
    for (double x : {-1.5, -0.3, 0.2, 1.7}) {
      const double h = 1e-6;
      const double numerical = (activate(kind, x + h) - activate(kind, x - h)) / (2 * h);
      const double analytic = activate_grad_from_output(kind, activate(kind, x));
      EXPECT_NEAR(analytic, numerical, 1e-5)
          << "kind=" << static_cast<int>(kind) << " x=" << x;
    }
  }
}

TEST(ActivationLayer, ForwardBackwardShape) {
  ActivationLayer layer(Activation::kTanh, 3);
  const Vec y = layer.forward({0.0, 1.0, -1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  const Vec dx = layer.backward({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(dx[0], 1.0);  // tanh'(0) = 1
  EXPECT_NEAR(dx[1], 1.0 - std::tanh(1.0) * std::tanh(1.0), 1e-12);
}

TEST(ActivationLayer, BackwardWithoutForwardThrows) {
  ActivationLayer layer(Activation::kElu, 1);
  EXPECT_THROW(layer.backward({1.0}), std::logic_error);
}

TEST(Initializers, XavierBoundsRespected) {
  common::Rng rng(1);
  Matrix w(20, 30);
  xavier_uniform(w, rng);
  const double limit = std::sqrt(6.0 / 50.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), limit);
  }
}

TEST(Initializers, HeNormalVarianceRoughlyCorrect) {
  common::Rng rng(2);
  Matrix w(100, 100);
  he_normal(w, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) sq += w.data()[i] * w.data()[i];
  EXPECT_NEAR(sq / static_cast<double>(w.size()), 2.0 / 100.0, 0.005);
}

TEST(Initializers, LstmForgetGateBias) {
  common::Rng rng(3);
  LstmParams p(4, 2);
  init_lstm(p, rng);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p.b[i], 0.0);        // input gate
  for (std::size_t i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(p.b[i], 1.0);        // forget gate
  for (std::size_t i = 8; i < 16; ++i) EXPECT_DOUBLE_EQ(p.b[i], 0.0);       // g, o
}

TEST(ParamBlock, CountsAndZeroGrad) {
  DenseParams p(3, 4);
  EXPECT_EQ(p.param_count(), 3u * 4u + 3u);
  p.gW.fill(5.0);
  p.zero_grad();
  EXPECT_DOUBLE_EQ(p.gW(0, 0), 0.0);
}

TEST(ParamBlock, CopyValuesBetweenBlocks) {
  auto a = std::make_shared<DenseParams>(2, 2);
  auto b = std::make_shared<DenseParams>(2, 2);
  a->W.fill(3.0);
  copy_param_values(std::vector<ParamBlockPtr>{a}, std::vector<ParamBlockPtr>{b});
  EXPECT_DOUBLE_EQ(b->W(1, 1), 3.0);
  auto c = std::make_shared<DenseParams>(3, 2);
  EXPECT_THROW(copy_param_values(std::vector<ParamBlockPtr>{a}, std::vector<ParamBlockPtr>{c}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::nn
