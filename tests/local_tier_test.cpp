#include "src/core/local_tier.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/cluster.hpp"

namespace hcrl::core {
namespace {

LocalPowerManagerOptions small_opts(std::size_t servers = 2) {
  LocalPowerManagerOptions o;
  o.num_servers = servers;
  o.predictor = "last-value";  // deterministic, fast
  o.agent.epsilon = rl::EpsilonSchedule::constant(0.0);
  return o;
}

TEST(LocalPowerManagerOptions, Validation) {
  EXPECT_NO_THROW(small_opts().validate());
  auto o = small_opts();
  o.w = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.timeout_actions = {30.0};  // missing the mandatory 0
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.timeout_actions = {};
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.interarrival_bins = {60.0, 30.0};  // unsorted
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.num_servers = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(RlPowerManager, DiscretizeUsesBinEdges) {
  RlPowerManager mgr(small_opts());
  // Default bins: {30, 60, 120, 300, 900, 3600} -> 7 states.
  EXPECT_EQ(mgr.discretize(5.0), 0u);
  EXPECT_EQ(mgr.discretize(30.0), 1u);
  EXPECT_EQ(mgr.discretize(59.0), 1u);
  EXPECT_EQ(mgr.discretize(200.0), 3u);
  EXPECT_EQ(mgr.discretize(10000.0), 6u);
}

TEST(RlPowerManager, OnIdleReturnsActionFromList) {
  RlPowerManager mgr(small_opts());
  sim::ServerConfig cfg;
  cfg.start_asleep = false;
  sim::ClusterMetrics metrics(2);
  sim::Server server(0, cfg, &metrics);
  const double timeout = mgr.on_idle(server, 100.0);
  const auto& actions = mgr.options().timeout_actions;
  EXPECT_NE(std::find(actions.begin(), actions.end(), timeout), actions.end());
  EXPECT_EQ(mgr.decisions(0), 1u);
}

TEST(RlPowerManager, SharedTableIsSharedAcrossServers) {
  auto o = small_opts(3);
  o.shared_table = true;
  RlPowerManager mgr(o);
  EXPECT_EQ(&mgr.agent(0), &mgr.agent(1));
  EXPECT_EQ(&mgr.agent(1), &mgr.agent(2));
}

TEST(RlPowerManager, PerServerTablesAreIndependentWhenConfigured) {
  auto o = small_opts(3);
  o.shared_table = false;
  RlPowerManager mgr(o);
  EXPECT_NE(&mgr.agent(0), &mgr.agent(1));
}

TEST(RlPowerManager, SojournClosesOnArrivalAndUpdatesQ) {
  auto o = small_opts(1);
  RlPowerManager mgr(o);
  sim::ServerConfig cfg;
  cfg.start_asleep = false;
  sim::ClusterMetrics metrics(1);
  sim::Server server(0, cfg, &metrics);
  sim::EventQueue queue;

  // Feed an arrival so the predictor has data, run the job, idle at t=20.
  sim::Job j1;
  j1.id = 1;
  j1.arrival = 10.0;
  j1.duration = 10.0;
  j1.demand = sim::ResourceVector{0.2, 0.1, 0.01};
  server.handle_arrival(j1, 10.0, queue, mgr);
  const sim::Event finish = queue.pop();
  server.handle_job_finish(finish.job, finish.time, queue, mgr);  // idles; decision made
  EXPECT_EQ(mgr.decisions(0), 1u);

  // Next arrival closes the sojourn: exactly one Q-table update must land.
  std::size_t visits_before = 0;
  for (std::size_t s = 0; s < mgr.agent(0).n_states(); ++s) {
    for (std::size_t a = 0; a < mgr.agent(0).n_actions(); ++a) {
      visits_before += mgr.agent(0).visits(s, a);
    }
  }
  EXPECT_EQ(visits_before, 0u);
  sim::Job j2 = j1;
  j2.id = 2;
  j2.arrival = 80.0;
  server.handle_arrival(j2, 80.0, queue, mgr);
  std::size_t visits_after = 0;
  for (std::size_t s = 0; s < mgr.agent(0).n_states(); ++s) {
    for (std::size_t a = 0; a < mgr.agent(0).n_actions(); ++a) {
      visits_after += mgr.agent(0).visits(s, a);
    }
  }
  EXPECT_EQ(visits_after, 1u);
}

TEST(RlPowerManager, LearningOffFreezesTable) {
  auto o = small_opts(1);
  RlPowerManager mgr(o);
  mgr.set_learning(false);
  sim::ServerConfig cfg;
  cfg.start_asleep = false;
  sim::ClusterMetrics metrics(1);
  sim::Server server(0, cfg, &metrics);
  sim::EventQueue queue;
  sim::Job j;
  j.id = 1;
  j.arrival = 0.0;
  j.duration = 5.0;
  j.demand = sim::ResourceVector{0.2, 0.1, 0.01};
  server.handle_arrival(j, 0.0, queue, mgr);
  const sim::Event finish = queue.pop();
  server.handle_job_finish(finish.job, finish.time, queue, mgr);
  sim::Job j2 = j;
  j2.id = 2;
  server.handle_arrival(j2, 100.0, queue, mgr);
  std::size_t visits = 0;
  for (std::size_t s = 0; s < mgr.agent(0).n_states(); ++s) {
    for (std::size_t a = 0; a < mgr.agent(0).n_actions(); ++a) {
      visits += mgr.agent(0).visits(s, a);
    }
  }
  EXPECT_EQ(visits, 0u);
}

// Behavioural learning test: with deterministic periodic arrivals whose gap
// is far beyond the sleep break-even, the manager should learn to shut down
// immediately (or nearly so) in the corresponding state; with very short
// gaps it should learn to stay up.
TEST(RlPowerManager, LearnsGapAppropriateTimeouts) {
  auto run_gaps = [](double gap) {
    LocalPowerManagerOptions o;
    o.num_servers = 1;
    o.predictor = "last-value";
    o.agent.epsilon = rl::EpsilonSchedule::exponential(0.8, 0.0, 40);
    o.agent.learning_rate = 0.2;
    o.w = 0.5;
    RlPowerManager mgr(o);
    sim::ServerConfig cfg;
    cfg.start_asleep = false;
    sim::ClusterMetrics metrics(1);
    sim::Server server(0, cfg, &metrics);
    sim::EventQueue queue;

    double t = 0.0;
    for (int i = 0; i < 400; ++i) {
      sim::Job j;
      j.id = i + 1;
      j.arrival = t;
      j.duration = 5.0;
      j.demand = sim::ResourceVector{0.2, 0.1, 0.01};
      server.handle_arrival(j, t, queue, mgr);
      // Drain everything scheduled before the next arrival.
      const double next_t = t + gap;
      while (!queue.empty() && queue.top().time < next_t) {
        const sim::Event e = queue.pop();
        switch (e.type) {
          case sim::EventType::kJobFinish:
            server.handle_job_finish(e.job, e.time, queue, mgr);
            break;
          case sim::EventType::kWakeComplete:
            server.handle_wake_complete(e.time, queue, mgr);
            break;
          case sim::EventType::kSleepComplete:
            server.handle_sleep_complete(e.time, queue, mgr);
            break;
          case sim::EventType::kIdleTimeout:
            server.handle_idle_timeout(e.generation, e.time, queue, mgr);
            break;
          case sim::EventType::kJobArrival:
          case sim::EventType::kServerCrash:
          case sim::EventType::kServerRecover:
          case sim::EventType::kSpotEvict:
            break;  // not produced by a single fault-free server
        }
      }
      t = next_t;
    }
    // Greedy timeout in the state corresponding to the (perfectly
    // predicted) gap.
    const std::size_t state = mgr.discretize(gap);
    const std::size_t best = mgr.agent(0).greedy_action(state);
    return mgr.options().timeout_actions[best];
  };

  // Gap of 2 hours: sleeping immediately is clearly optimal.
  EXPECT_DOUBLE_EQ(run_gaps(7200.0), 0.0);
  // Gap of 40 s (under the ~100 s break-even): should NOT sleep immediately.
  EXPECT_GT(run_gaps(40.0), 0.0);
}

TEST(RlPowerManager, AgentAccessorsValidateServer) {
  RlPowerManager mgr(small_opts(2));
  EXPECT_THROW(mgr.agent(5), std::out_of_range);
  EXPECT_THROW(mgr.predictor(5), std::out_of_range);
  EXPECT_THROW(mgr.decisions(5), std::out_of_range);
}

}  // namespace
}  // namespace hcrl::core
