#include "src/nn/loss.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::nn {
namespace {

TEST(MseLoss, ValueAndGradient) {
  const LossResult r = mse_loss(Vec{1.0, 2.0}, Vec{0.0, 4.0});
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(r.grad[1], 2.0 * -2.0 / 2.0);
}

TEST(MseLoss, ZeroAtTarget) {
  const LossResult r = mse_loss(Vec{3.0}, Vec{3.0});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 0.0);
}

TEST(MseLoss, EmptyThrows) { EXPECT_THROW(mse_loss(Vec{}, Vec{}), std::invalid_argument); }

TEST(HuberLoss, QuadraticInsideDelta) {
  const LossResult r = huber_loss(Vec{0.5}, Vec{0.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 0.5 * 0.25);
  EXPECT_DOUBLE_EQ(r.grad[0], 0.5);
}

TEST(HuberLoss, LinearOutsideDelta) {
  const LossResult r = huber_loss(Vec{5.0}, Vec{0.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 1.0 * (5.0 - 0.5));
  EXPECT_DOUBLE_EQ(r.grad[0], 1.0);  // capped
  const LossResult neg = huber_loss(Vec{-5.0}, Vec{0.0}, 1.0);
  EXPECT_DOUBLE_EQ(neg.grad[0], -1.0);
}

TEST(HuberLoss, ContinuousAtDelta) {
  const double delta = 1.0;
  const LossResult inside = huber_loss(Vec{delta - 1e-9}, Vec{0.0}, delta);
  const LossResult outside = huber_loss(Vec{delta + 1e-9}, Vec{0.0}, delta);
  EXPECT_NEAR(inside.value, outside.value, 1e-7);
  EXPECT_NEAR(inside.grad[0], outside.grad[0], 1e-7);
}

TEST(HuberLoss, InvalidDeltaThrows) {
  EXPECT_THROW(huber_loss(Vec{1.0}, Vec{0.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(huber_loss(Vec{1.0}, Vec{0.0}, -1.0), std::invalid_argument);
}

TEST(MaskedMse, OnlySelectedIndexGetsGradient) {
  const LossResult r = masked_mse_loss(Vec{1.0, 5.0, -2.0}, 1, 3.0);
  EXPECT_DOUBLE_EQ(r.value, 4.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 0.0);
  EXPECT_DOUBLE_EQ(r.grad[1], 4.0);
  EXPECT_DOUBLE_EQ(r.grad[2], 0.0);
}

TEST(MaskedMse, IndexOutOfRangeThrows) {
  EXPECT_THROW(masked_mse_loss(Vec{1.0}, 1, 0.0), std::invalid_argument);
}

TEST(MaskedHuber, GradientIsCapped) {
  const LossResult r = masked_huber_loss(Vec{0.0, 100.0}, 1, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(r.grad[1], 1.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 0.0);
  const LossResult small = masked_huber_loss(Vec{0.0, 0.25}, 1, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(small.grad[1], 0.25);
}

TEST(MaskedHuber, InvalidArgsThrow) {
  EXPECT_THROW(masked_huber_loss(Vec{1.0}, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(masked_huber_loss(Vec{1.0}, 0, 0.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::nn
