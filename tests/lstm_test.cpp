#include "src/nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/rng.hpp"
#include "src/nn/init.hpp"
#include "src/nn/layer.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/optimizer.hpp"

namespace hcrl::nn {
namespace {

LstmParamsPtr make_params(std::size_t hidden, std::size_t in, std::uint64_t seed) {
  auto p = std::make_shared<LstmParams>(hidden, in);
  common::Rng rng(seed);
  init_lstm(*p, rng);
  return p;
}

TEST(Lstm, ShapesAndReset) {
  Lstm lstm(make_params(4, 2, 1));
  EXPECT_EQ(lstm.hidden_dim(), 4u);
  EXPECT_EQ(lstm.in_dim(), 2u);
  const Vec h = lstm.step({0.5, -0.5});
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(lstm.cached_steps(), 1u);
  lstm.reset();
  EXPECT_EQ(lstm.cached_steps(), 0u);
  for (double v : lstm.hidden()) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : lstm.cell()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Lstm, OutputsBoundedByGateAlgebra) {
  // h = o * tanh(c): |h| < 1 whenever |tanh(c)| < 1, and o in (0,1).
  Lstm lstm(make_params(8, 1, 2));
  for (int t = 0; t < 50; ++t) {
    const Vec h = lstm.step({std::sin(0.3 * t) * 5.0});
    for (double v : h) EXPECT_LT(std::abs(v), 1.0);
  }
}

TEST(Lstm, DeterministicGivenParams) {
  auto p = make_params(3, 1, 3);
  Lstm a(p), b(p);
  for (int t = 0; t < 10; ++t) {
    const Vec ha = a.step({0.1 * t});
    const Vec hb = b.step({0.1 * t});
    for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_DOUBLE_EQ(ha[i], hb[i]);
  }
}

TEST(Lstm, ForwardRunsWholeSequence) {
  Lstm lstm(make_params(3, 1, 4));
  std::vector<Vec> xs = {{0.1}, {0.2}, {0.3}};
  const auto hs = lstm.forward(xs);
  EXPECT_EQ(hs.size(), 3u);
  EXPECT_EQ(lstm.cached_steps(), 3u);
}

TEST(Lstm, BackwardSizeMismatchThrows) {
  Lstm lstm(make_params(3, 1, 5));
  lstm.step({0.5});
  std::vector<Vec> dh(2, Vec(3, 0.0));
  EXPECT_THROW(lstm.backward(dh), std::invalid_argument);
}

TEST(Lstm, NullParamsThrows) { EXPECT_THROW(Lstm(nullptr), std::invalid_argument); }

// BPTT gradient check against central finite differences, loss on the last
// hidden state only — exactly the predictor's training configuration.
TEST(Lstm, GradientMatchesFiniteDifferences) {
  auto params = make_params(3, 2, 6);
  Lstm lstm(params);
  const std::vector<Vec> xs = {{0.5, -0.2}, {0.1, 0.9}, {-0.7, 0.3}, {0.2, 0.2}};
  const Vec target = {0.3, -0.1, 0.2};

  auto loss_of = [&]() {
    const auto hs = lstm.forward(xs);
    const double v = mse_loss(hs.back(), target).value;
    lstm.reset();
    return v;
  };

  // Analytic gradients.
  params->zero_grad();
  const auto hs = lstm.forward(xs);
  LossResult loss = mse_loss(hs.back(), target);
  std::vector<Vec> dh(xs.size(), Vec(3, 0.0));
  dh.back() = loss.grad;
  lstm.backward(dh);

  std::vector<ParamSegment> segs;
  params->append_segments(segs);
  const double h = 1e-6;
  int checked = 0;
  for (auto& seg : segs) {
    for (std::size_t i = 0; i < seg.n; i += 5) {
      const double orig = seg.value[i];
      seg.value[i] = orig + h;
      const double up = loss_of();
      seg.value[i] = orig - h;
      const double down = loss_of();
      seg.value[i] = orig;
      EXPECT_NEAR(seg.grad[i], (up - down) / (2 * h), 2e-5) << "index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Lstm, InputGradientsReturned) {
  auto params = make_params(2, 1, 7);
  Lstm lstm(params);
  std::vector<Vec> xs = {{0.4}, {0.6}};
  lstm.forward(xs);
  std::vector<Vec> dh = {Vec{0.0, 0.0}, Vec{1.0, 1.0}};
  const auto dx = lstm.backward(dh);
  ASSERT_EQ(dx.size(), 2u);
  EXPECT_EQ(dx[0].size(), 1u);
  // Gradient through time must reach the first input.
  EXPECT_NE(dx[0][0], 0.0);
}

TEST(Lstm, LearnsToPredictSineNextValue) {
  // Train in=1, hidden=8 LSTM + linear readout to predict the next sample of
  // a sine wave from the previous 10. Loss must drop by a large factor.
  const std::size_t lookback = 10, hidden = 8;
  auto lstm_params = make_params(hidden, 1, 8);
  auto out_params = std::make_shared<DenseParams>(1, hidden);
  common::Rng rng(9);
  init_dense(*out_params, rng);
  Lstm lstm(lstm_params);
  Dense out(out_params);
  Adam opt({lstm_params, out_params}, Adam::Options{.lr = 5e-3});

  auto sample = [](int t) { return std::sin(2.0 * std::numbers::pi * t / 25.0); };

  double first_loss = 0.0, last_loss = 0.0;
  const int iters = 400;
  for (int it = 0; it < iters; ++it) {
    const int start = it % 100;
    std::vector<Vec> xs;
    for (std::size_t k = 0; k < lookback; ++k) xs.push_back({sample(start + static_cast<int>(k))});
    const double target = sample(start + static_cast<int>(lookback));

    opt.zero_grad();
    const auto hs = lstm.forward(xs);
    const Vec pred = out.forward(hs.back());
    LossResult loss = mse_loss(pred, {target});
    const Vec dh = out.backward(loss.grad);
    std::vector<Vec> dh_list(lookback, Vec(hidden, 0.0));
    dh_list.back() = dh;
    lstm.backward(dh_list);
    clip_grad_norm(std::vector<ParamBlockPtr>{lstm_params, out_params}, 10.0);
    opt.step();

    if (it < 20) first_loss += loss.value;
    if (it >= iters - 20) last_loss += loss.value;
  }
  EXPECT_LT(last_loss, first_loss * 0.2) << "first=" << first_loss << " last=" << last_loss;
}

}  // namespace
}  // namespace hcrl::nn
