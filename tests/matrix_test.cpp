#include "src/nn/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace hcrl::nn {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 0 -1]^T = [-2, -2]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  Vec y;
  m.multiply({1.0, 0.0, -1.0}, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MultiplyTransposedKnownValues) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  Vec y;
  m.multiply_transposed({1.0, 1.0}, y);  // column sums
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
}

TEST(Matrix, AddOuterAccumulates) {
  Matrix m(2, 2, 1.0);
  m.add_outer({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(Matrix, ResizeReshapes) {
  Matrix m(1, 1, 2.0);
  m.resize(3, 4, 0.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(2, 3), 0.5);
}

TEST(Matrix, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).same_shape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).same_shape(Matrix(3, 2)));
}

TEST(VecHelpers, AddAndAddInPlace) {
  Vec a = {1.0, 2.0};
  const Vec b = {3.0, -1.0};
  const Vec c = add(a, b);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  add_in_place(a, b);
  EXPECT_DOUBLE_EQ(a[0], 4.0);
}

TEST(VecHelpers, ScaleDotNorm) {
  Vec a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  scale_in_place(a, 2.0);
  EXPECT_DOUBLE_EQ(a[1], 8.0);
}

TEST(VecHelpers, Concat) {
  const Vec a = {1.0}, b = {2.0, 3.0}, c = {};
  const Vec out = concat(std::vector<const Vec*>{&a, &b, &c});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(VecHelpers, ArgmaxFirstOnTies) {
  EXPECT_EQ(argmax(Vec{1.0, 5.0, 5.0, 2.0}), 1u);
  EXPECT_EQ(argmax(Vec{-3.0}), 0u);
  EXPECT_THROW(argmax(Vec{}), std::invalid_argument);
}

// --- GEMM kernels ---------------------------------------------------------

Matrix make(std::size_t rows, std::size_t cols, std::initializer_list<double> vals) {
  Matrix m(rows, cols);
  std::size_t i = 0;
  for (double v : vals) m.data()[i++] = v;
  return m;
}

void expect_matrix_eq(const Matrix& a, const Matrix& b, double tol = 1e-12) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol) << "(" << r << "," << c << ")";
    }
  }
}

TEST(Gemm, GoldenSmallProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const Matrix A = make(2, 2, {1, 2, 3, 4});
  const Matrix B = make(2, 2, {5, 6, 7, 8});
  Matrix C;
  gemm(A, B, C);
  expect_matrix_eq(C, make(2, 2, {19, 22, 43, 50}));
}

TEST(Gemm, GoldenRectangular) {
  // (2x3) * (3x2)
  const Matrix A = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix B = make(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix C;
  gemm(A, B, C);
  expect_matrix_eq(C, make(2, 2, {58, 64, 139, 154}));
}

TEST(Gemm, TransposeVariantsMatchExplicitTranspose) {
  common::Rng rng(3);
  auto rand_matrix = [&rng](std::size_t r, std::size_t c) {
    Matrix m(r, c);
    for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0, 1.0);
    return m;
  };
  auto transpose = [](const Matrix& m) {
    Matrix t(m.cols(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) t(c, r) = m(r, c);
    }
    return t;
  };
  for (int trial = 0; trial < 5; ++trial) {
    const auto m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const auto k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const auto n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const Matrix At = rand_matrix(k, m);  // A^T stored; A = transpose(At)
    const Matrix B = rand_matrix(k, n);
    Matrix via_tn, via_plain;
    gemm_tn(At, B, via_tn);
    gemm(transpose(At), B, via_plain);
    expect_matrix_eq(via_tn, via_plain);

    const Matrix A2 = rand_matrix(m, k);
    const Matrix Bt = rand_matrix(n, k);  // B^T stored
    Matrix via_nt, via_plain2;
    gemm_nt(A2, Bt, via_nt);
    gemm(A2, transpose(Bt), via_plain2);
    expect_matrix_eq(via_nt, via_plain2);
  }
}

TEST(Gemm, AccumulateAddsIntoExisting) {
  const Matrix A = make(1, 2, {1, 2});
  const Matrix B = make(2, 1, {3, 4});
  Matrix C(1, 1, 100.0);
  gemm(A, B, C, /*accumulate=*/true);
  EXPECT_DOUBLE_EQ(C(0, 0), 111.0);  // 100 + 1*3 + 2*4
}

TEST(Gemm, ShapeMismatchThrows) {
  const Matrix A(2, 3), B(2, 3);  // inner dims disagree for plain product
  Matrix C;
  EXPECT_THROW(gemm(A, B, C), std::invalid_argument);
  const Matrix D(4, 3);
  EXPECT_THROW(gemm_tn(A, D, C), std::invalid_argument);  // A rows != D rows
  const Matrix E(4, 5);
  EXPECT_THROW(gemm_nt(A, E, C), std::invalid_argument);  // A cols != E cols
  Matrix F(9, 9, 1.0);
  EXPECT_THROW(gemm(A, Matrix(3, 2), F, /*accumulate=*/true), std::invalid_argument);
}

TEST(Gemm, IdentityIsNeutral) {
  common::Rng rng(5);
  Matrix A(4, 4);
  for (std::size_t i = 0; i < A.size(); ++i) A.data()[i] = rng.uniform(-3.0, 3.0);
  Matrix I(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) I(i, i) = 1.0;
  Matrix L, R;
  gemm(I, A, L);
  gemm(A, I, R);
  expect_matrix_eq(L, A);
  expect_matrix_eq(R, A);
}

TEST(Gemm, AssociativityProperty) {
  // (A B) C == A (B C) for random matrices, to numerical tolerance.
  common::Rng rng(6);
  auto rand_matrix = [&rng](std::size_t r, std::size_t c) {
    Matrix m(r, c);
    for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0, 1.0);
    return m;
  };
  for (int trial = 0; trial < 5; ++trial) {
    const auto d1 = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    const auto d2 = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    const auto d3 = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    const auto d4 = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    const Matrix A = rand_matrix(d1, d2), B = rand_matrix(d2, d3), C = rand_matrix(d3, d4);
    Matrix AB, AB_C, BC, A_BC;
    gemm(A, B, AB);
    gemm(AB, C, AB_C);
    gemm(B, C, BC);
    gemm(A, BC, A_BC);
    expect_matrix_eq(AB_C, A_BC, 1e-10);
  }
}

TEST(Gemm, BatchOneMatchesMatrixVectorKernels) {
  // The per-sample kernels and the batch-1 GEMMs must agree exactly.
  common::Rng rng(7);
  Matrix W(5, 3);
  for (std::size_t i = 0; i < W.size(); ++i) W.data()[i] = rng.uniform(-2.0, 2.0);
  Vec x = {0.3, -1.2, 2.5};

  Vec y;
  W.multiply(x, y);
  Matrix Y;
  gemm_nt(Matrix::from_row(x), W, Y);  // (1x3) * (5x3)^T = (1x5)
  for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(Y(0, j), y[j]);

  Vec dy = {1.0, -0.5, 0.25, 2.0, -1.5};
  Vec dx;
  W.multiply_transposed(dy, dx);
  Matrix dX;
  gemm(Matrix::from_row(dy), W, dX);  // (1x5) * (5x3) = (1x3)
  for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(dX(0, j), dx[j]);

  Matrix gW(5, 3, 0.0), gW_ref(5, 3, 0.0);
  gW_ref.add_outer(dy, x);
  gemm_tn(Matrix::from_row(dy), Matrix::from_row(x), gW, /*accumulate=*/true);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(gW(r, c), gW_ref(r, c));
  }
}

TEST(MatrixRowHelpers, FromRowsRowSetRowColSums) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  const Vec r1 = m.row(1);
  EXPECT_DOUBLE_EQ(r1[0], 3.0);

  Matrix n(2, 2, 0.0);
  n.set_row(1, {7.0, 8.0});
  EXPECT_DOUBLE_EQ(n(1, 1), 8.0);
  n.add_row_broadcast({1.0, 1.0});
  EXPECT_DOUBLE_EQ(n(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(n(1, 0), 8.0);

  Vec sums(2, 10.0);
  m.add_col_sums_into(sums);
  EXPECT_DOUBLE_EQ(sums[0], 19.0);  // 10 + 1+3+5
  EXPECT_DOUBLE_EQ(sums[1], 22.0);  // 10 + 2+4+6

  EXPECT_THROW(Matrix::from_rows({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::nn
