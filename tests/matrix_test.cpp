#include "src/nn/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hcrl::nn {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 0 -1]^T = [-2, -2]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  Vec y;
  m.multiply({1.0, 0.0, -1.0}, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MultiplyTransposedKnownValues) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  Vec y;
  m.multiply_transposed({1.0, 1.0}, y);  // column sums
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
}

TEST(Matrix, AddOuterAccumulates) {
  Matrix m(2, 2, 1.0);
  m.add_outer({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(Matrix, ResizeReshapes) {
  Matrix m(1, 1, 2.0);
  m.resize(3, 4, 0.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(2, 3), 0.5);
}

TEST(Matrix, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).same_shape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).same_shape(Matrix(3, 2)));
}

TEST(VecHelpers, AddAndAddInPlace) {
  Vec a = {1.0, 2.0};
  const Vec b = {3.0, -1.0};
  const Vec c = add(a, b);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  add_in_place(a, b);
  EXPECT_DOUBLE_EQ(a[0], 4.0);
}

TEST(VecHelpers, ScaleDotNorm) {
  Vec a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  scale_in_place(a, 2.0);
  EXPECT_DOUBLE_EQ(a[1], 8.0);
}

TEST(VecHelpers, Concat) {
  const Vec a = {1.0}, b = {2.0, 3.0}, c = {};
  const Vec out = concat({&a, &b, &c});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(VecHelpers, ArgmaxFirstOnTies) {
  EXPECT_EQ(argmax({1.0, 5.0, 5.0, 2.0}), 1u);
  EXPECT_EQ(argmax({-3.0}), 0u);
  EXPECT_THROW(argmax({}), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::nn
