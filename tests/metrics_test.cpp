#include "src/sim/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::sim {
namespace {

Job job_at(JobId id, Time arrival) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = 10.0;
  j.demand = ResourceVector{0.1};
  return j;
}

JobRecord record(JobId id, Time arrival, Time start, Time finish) {
  JobRecord r;
  r.id = id;
  r.arrival = arrival;
  r.start = start;
  r.finish = finish;
  return r;
}

TEST(ClusterMetrics, ArrivalsAndCompletionsCounted) {
  ClusterMetrics m(2);
  m.on_arrival(job_at(1, 0.0), 0.0);
  m.on_arrival(job_at(2, 1.0), 1.0);
  EXPECT_EQ(m.jobs_arrived(), 2u);
  EXPECT_DOUBLE_EQ(m.jobs_in_system(), 2.0);
  m.on_completion(record(1, 0.0, 0.0, 5.0), 5.0);
  EXPECT_EQ(m.jobs_completed(), 1u);
  EXPECT_DOUBLE_EQ(m.jobs_in_system(), 1.0);
}

TEST(ClusterMetrics, LatencyAccumulation) {
  ClusterMetrics m(1);
  m.on_arrival(job_at(1, 0.0), 0.0);
  m.on_arrival(job_at(2, 0.0), 0.0);
  m.on_completion(record(1, 0.0, 2.0, 12.0), 12.0);   // latency 12
  m.on_completion(record(2, 0.0, 12.0, 30.0), 30.0);  // latency 30
  EXPECT_DOUBLE_EQ(m.accumulated_latency(), 42.0);
  EXPECT_DOUBLE_EQ(m.latency_stats().mean(), 21.0);
  EXPECT_DOUBLE_EQ(m.wait_stats().mean(), 7.0);  // waits 2 and 12
}

TEST(ClusterMetrics, PowerIntegralSumsServers) {
  ClusterMetrics m(2);
  m.on_power_change(0, 100.0, 0.0);
  m.on_power_change(1, 50.0, 0.0);
  EXPECT_DOUBLE_EQ(m.total_power_watts(), 150.0);
  m.on_power_change(0, 0.0, 10.0);  // server 0 off after 10 s
  // Energy so far: 150 W * 10 s.
  EXPECT_DOUBLE_EQ(m.energy_joules(10.0), 1500.0);
  // 10 more seconds at 50 W.
  EXPECT_DOUBLE_EQ(m.energy_joules(20.0), 2000.0);
}

TEST(ClusterMetrics, PowerChangeValidatesServer) {
  ClusterMetrics m(2);
  EXPECT_THROW(m.on_power_change(5, 1.0, 0.0), std::out_of_range);
  EXPECT_THROW(m.on_reliability_change(5, 1.0, 0.0), std::out_of_range);
}

TEST(ClusterMetrics, ReliabilityIntegralTracksDeltas) {
  ClusterMetrics m(2);
  m.on_reliability_change(0, 0.04, 0.0);
  m.on_reliability_change(1, 0.01, 0.0);
  m.on_reliability_change(0, 0.0, 10.0);
  // [0,10): 0.05 total -> 0.5; afterwards 0.01.
  EXPECT_NEAR(m.reliability_integral(10.0), 0.5, 1e-12);
  EXPECT_NEAR(m.reliability_integral(20.0), 0.6, 1e-12);
}

TEST(ClusterMetrics, SnapshotComposition) {
  ClusterMetrics m(1);
  m.on_power_change(0, 100.0, 0.0);
  m.on_arrival(job_at(1, 0.0), 0.0);
  m.on_completion(record(1, 0.0, 0.0, 36.0), 36.0);
  const MetricsSnapshot s = m.snapshot(3600.0);
  EXPECT_DOUBLE_EQ(s.energy_joules, 360000.0);
  EXPECT_DOUBLE_EQ(s.energy_kwh(), 0.1);
  EXPECT_DOUBLE_EQ(s.average_power_watts, 100.0);
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_DOUBLE_EQ(s.average_latency_s(), 36.0);
  EXPECT_DOUBLE_EQ(s.energy_per_job(), 360000.0);
}

TEST(ClusterMetrics, JobRecordsKeptWhenEnabled) {
  ClusterMetrics keep(1, true);
  keep.on_completion(record(1, 0.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(keep.job_records().size(), 1u);
  ClusterMetrics drop(1, false);
  drop.on_completion(record(1, 0.0, 0.0, 1.0), 1.0);
  EXPECT_TRUE(drop.job_records().empty());
  EXPECT_EQ(drop.jobs_completed(), 1u);  // counters still work
}

TEST(MetricsSnapshot, SafeOnEmpty) {
  const MetricsSnapshot s;
  EXPECT_DOUBLE_EQ(s.average_latency_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.energy_per_job(), 0.0);
}

}  // namespace
}  // namespace hcrl::sim
