#include "src/nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/nn/loss.hpp"

namespace hcrl::nn {
namespace {

Network make_mlp(common::Rng& rng) {
  Network net;
  net.add_dense(3, 5, Activation::kTanh, rng);
  net.add_dense(5, 2, Activation::kIdentity, rng);
  return net;
}

TEST(Network, DimsAndParamCount) {
  common::Rng rng(1);
  Network net = make_mlp(rng);
  EXPECT_EQ(net.in_dim(), 3u);
  EXPECT_EQ(net.out_dim(), 2u);
  EXPECT_EQ(net.param_count(), (3u * 5 + 5) + (5u * 2 + 2));
}

TEST(Network, DimensionMismatchThrows) {
  common::Rng rng(1);
  Network net;
  net.add_dense(3, 5, Activation::kElu, rng);
  auto bad = std::make_shared<DenseParams>(2, 4);  // expects in=4, have 5
  EXPECT_THROW(net.add(std::make_unique<Dense>(bad)), std::invalid_argument);
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Network, EmptyNetworkThrowsOnDims) {
  Network net;
  EXPECT_THROW(net.in_dim(), std::logic_error);
  EXPECT_THROW(net.out_dim(), std::logic_error);
}

TEST(Network, PredictMatchesForward) {
  common::Rng rng(2);
  Network net = make_mlp(rng);
  const Vec x = {0.1, -0.5, 0.8};
  const Vec a = net.forward(x);
  net.clear_cache();
  const Vec b = net.predict(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// End-to-end gradient check of the whole backprop stack against central
// finite differences. This is the single most important test of nn/.
TEST(Network, GradientMatchesFiniteDifferences) {
  common::Rng rng(3);
  Network net;
  net.add_dense(4, 6, Activation::kElu, rng);
  net.add_dense(6, 5, Activation::kTanh, rng);
  net.add_dense(5, 3, Activation::kIdentity, rng);

  const Vec x = {0.3, -0.7, 0.2, 0.9};
  const Vec target = {0.5, -0.25, 1.0};

  net.zero_grad();
  const Vec pred = net.forward(x);
  LossResult loss = mse_loss(pred, target);
  net.backward(loss.grad);

  auto segs = gather_segments(net.params());
  const double h = 1e-6;
  int checked = 0;
  for (auto& seg : segs) {
    for (std::size_t i = 0; i < seg.n; i += 7) {  // sample every 7th weight
      const double orig = seg.value[i];
      seg.value[i] = orig + h;
      const double up = mse_loss(net.predict(x), target).value;
      seg.value[i] = orig - h;
      const double down = mse_loss(net.predict(x), target).value;
      seg.value[i] = orig;
      const double numerical = (up - down) / (2 * h);
      EXPECT_NEAR(seg.grad[i], numerical, 1e-4) << "param index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Network, InputGradientMatchesFiniteDifferences) {
  common::Rng rng(4);
  Network net = make_mlp(rng);
  Vec x = {0.2, 0.4, -0.1};
  const Vec target = {1.0, -1.0};

  const Vec pred = net.forward(x);
  LossResult loss = mse_loss(pred, target);
  const Vec dx = net.backward(loss.grad);

  const double h = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    x[i] = orig + h;
    const double up = mse_loss(net.predict(x), target).value;
    x[i] = orig - h;
    const double down = mse_loss(net.predict(x), target).value;
    x[i] = orig;
    EXPECT_NEAR(dx[i], (up - down) / (2 * h), 1e-5);
  }
}

TEST(Network, ZeroGradClearsAllParams) {
  common::Rng rng(5);
  Network net = make_mlp(rng);
  net.forward({1.0, 1.0, 1.0});
  net.backward({1.0, 1.0});
  net.zero_grad();
  for (auto& seg : gather_segments(net.params())) {
    for (std::size_t i = 0; i < seg.n; ++i) EXPECT_DOUBLE_EQ(seg.grad[i], 0.0);
  }
}

TEST(Network, SharedDenseAppearsOnceInParamsPerLayer) {
  common::Rng rng(6);
  auto shared = std::make_shared<DenseParams>(3, 3);
  Network net;
  net.add_shared_dense(shared, Activation::kElu);
  net.add_shared_dense(shared, Activation::kIdentity);
  // Two layers share one block: params() lists it twice (by layer), but the
  // underlying storage is the same object.
  const auto params = net.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].get(), params[1].get());
}

}  // namespace
}  // namespace hcrl::nn
