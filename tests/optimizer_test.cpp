#include "src/nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hcrl::nn {
namespace {

DenseParamsPtr single_param(double value, double grad) {
  auto p = std::make_shared<DenseParams>(1, 1);
  p->W(0, 0) = value;
  p->gW(0, 0) = grad;
  return p;
}

TEST(ClipGradNorm, NoOpBelowThreshold) {
  auto p = single_param(0.0, 3.0);
  const double norm = clip_grad_norm(std::vector<ParamBlockPtr>{p}, 10.0);
  EXPECT_DOUBLE_EQ(norm, 3.0);
  EXPECT_DOUBLE_EQ(p->gW(0, 0), 3.0);
}

TEST(ClipGradNorm, ScalesAboveThreshold) {
  auto a = single_param(0.0, 3.0);
  auto b = single_param(0.0, 4.0);
  const double norm = clip_grad_norm(std::vector<ParamBlockPtr>{a, b}, 1.0);  // global norm = 5
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(a->gW(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(b->gW(0, 0), 0.8, 1e-12);
}

TEST(ClipGradNorm, InvalidMaxNormThrows) {
  auto p = single_param(0.0, 1.0);
  EXPECT_THROW(clip_grad_norm(std::vector<ParamBlockPtr>{p}, 0.0), std::invalid_argument);
}

TEST(Sgd, PlainStep) {
  auto p = single_param(1.0, 0.5);
  Sgd opt({p}, 0.1);
  opt.step();
  EXPECT_DOUBLE_EQ(p->W(0, 0), 1.0 - 0.1 * 0.5);
}

TEST(Sgd, MomentumAccumulates) {
  auto p = single_param(0.0, 1.0);
  Sgd opt({p}, 1.0, 0.9);
  opt.step();  // v=1, w=-1
  EXPECT_DOUBLE_EQ(p->W(0, 0), -1.0);
  opt.step();  // v=1.9, w=-2.9
  EXPECT_DOUBLE_EQ(p->W(0, 0), -2.9);
}

TEST(Sgd, ZeroGradClears) {
  auto p = single_param(0.0, 1.0);
  Sgd opt({p}, 0.1);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p->gW(0, 0), 0.0);
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  auto p = single_param(1.0, 0.3);
  Adam opt({p}, Adam::Options{.lr = 0.01});
  opt.step();
  EXPECT_NEAR(p->W(0, 0), 1.0 - 0.01, 1e-6);
}

TEST(Adam, StepsCounterIncrements) {
  auto p = single_param(0.0, 1.0);
  Adam opt({p});
  EXPECT_EQ(opt.steps_taken(), 0);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.steps_taken(), 2);
}

TEST(Adam, InvalidLrThrows) {
  auto p = single_param(0.0, 0.0);
  EXPECT_THROW(Adam({p}, Adam::Options{.lr = 0.0}), std::invalid_argument);
}

TEST(Adam, NullParamThrows) {
  EXPECT_THROW(Adam({nullptr}), std::invalid_argument);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize f(w) = (w - 3)^2 by feeding grad = 2(w-3) each step.
  auto p = single_param(-5.0, 0.0);
  Adam opt({p}, Adam::Options{.lr = 0.1});
  for (int i = 0; i < 2000; ++i) {
    p->gW(0, 0) = 2.0 * (p->W(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(p->W(0, 0), 3.0, 1e-3);
}

TEST(Adam, WeightDecayShrinksWeights) {
  auto p = single_param(10.0, 0.0);
  Adam opt({p}, Adam::Options{.lr = 0.1, .weight_decay = 0.1});
  for (int i = 0; i < 100; ++i) opt.step();  // zero grads; only decay acts
  EXPECT_LT(p->W(0, 0), 10.0);
}

TEST(Sgd, ConvergesOnQuadratic) {
  auto p = single_param(8.0, 0.0);
  Sgd opt({p}, 0.1, 0.0);
  for (int i = 0; i < 500; ++i) {
    p->gW(0, 0) = 2.0 * (p->W(0, 0) - 1.0);
    opt.step();
  }
  EXPECT_NEAR(p->W(0, 0), 1.0, 1e-6);
}

}  // namespace
}  // namespace hcrl::nn
