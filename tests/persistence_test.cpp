// Model persistence for the global tier: a trained DrlAllocator can be
// saved, reloaded into a fresh allocator, and reproduces identical greedy
// decisions — the deployment workflow (offline construction, then frozen
// online serving).
#include <gtest/gtest.h>

#include "src/core/global_tier.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl::core {
namespace {

DrlAllocatorOptions small_opts() {
  DrlAllocatorOptions o;
  o.qnet.encoder.num_servers = 6;
  o.qnet.encoder.num_groups = 2;
  o.qnet.autoencoder_dims = {8, 4};
  o.qnet.subq_hidden = 16;
  o.min_replay_before_training = 32;
  o.batch_size = 8;
  o.seed = 31;
  return o;
}

std::vector<sim::Job> trace(std::size_t n, std::uint64_t seed) {
  workload::GeneratorOptions g;
  g.num_jobs = n;
  g.horizon_s = static_cast<double>(n) * 8.0;
  g.seed = seed;
  return workload::GoogleTraceGenerator(g).generate();
}

TEST(DrlPersistence, SaveLoadReproducesGreedyDecisions) {
  const std::string path = testing::TempDir() + "/hcrl_drl_model.txt";

  DrlAllocator trained(small_opts());
  {
    sim::ImmediateSleepPolicy power;
    sim::ClusterConfig cfg;
    cfg.num_servers = 6;
    sim::Cluster cluster(cfg, trained, power);
    cluster.load_jobs(trace(600, 3));
    cluster.run();
  }
  ASSERT_GT(trained.train_steps(), 0);
  trained.save_model(path);

  DrlAllocatorOptions fresh_opts = small_opts();
  fresh_opts.seed = 99;  // different init; weights come from the file
  DrlAllocator restored(fresh_opts);
  restored.load_model(path);

  trained.set_learning(false);
  restored.set_learning(false);

  // Replay a fresh trace through both greedy policies side by side.
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster ca(cfg, trained, power);
  sim::Cluster cb(cfg, restored, power);
  const auto jobs = trace(200, 17);
  for (const auto& job : jobs) {
    EXPECT_EQ(trained.select_server(ca, job), restored.select_server(cb, job));
  }
}

TEST(DrlPersistence, LoadIntoMismatchedArchitectureFails) {
  const std::string path = testing::TempDir() + "/hcrl_drl_model2.txt";
  DrlAllocator a(small_opts());
  a.save_model(path);
  auto other = small_opts();
  other.qnet.subq_hidden = 24;
  DrlAllocator b(other);
  EXPECT_THROW(b.load_model(path), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::core
