// Model persistence for the global tier: a trained DrlAllocator can be
// saved, reloaded into a fresh allocator, and reproduces identical greedy
// decisions — the deployment workflow (offline construction, then frozen
// online serving).
#include <gtest/gtest.h>

#include "src/core/global_tier.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl::core {
namespace {

DrlAllocatorOptions small_opts() {
  DrlAllocatorOptions o;
  o.qnet.encoder.num_servers = 6;
  o.qnet.encoder.num_groups = 2;
  o.qnet.autoencoder_dims = {8, 4};
  o.qnet.subq_hidden = 16;
  o.min_replay_before_training = 32;
  o.batch_size = 8;
  o.seed = 31;
  return o;
}

std::vector<sim::Job> trace(std::size_t n, std::uint64_t seed) {
  workload::GeneratorOptions g;
  g.num_jobs = n;
  g.horizon_s = static_cast<double>(n) * 8.0;
  g.seed = seed;
  return workload::GoogleTraceGenerator(g).generate();
}

TEST(DrlPersistence, SaveLoadReproducesGreedyDecisions) {
  const std::string path = testing::TempDir() + "/hcrl_drl_model.txt";

  DrlAllocator trained(small_opts());
  {
    sim::ImmediateSleepPolicy power;
    sim::ClusterConfig cfg;
    cfg.num_servers = 6;
    sim::Cluster cluster(cfg, trained, power);
    cluster.load_jobs(trace(600, 3));
    cluster.run();
  }
  ASSERT_GT(trained.train_steps(), 0);
  trained.save_model(path);

  DrlAllocatorOptions fresh_opts = small_opts();
  fresh_opts.seed = 99;  // different init; weights come from the file
  DrlAllocator restored(fresh_opts);
  restored.load_model(path);

  trained.set_learning(false);
  restored.set_learning(false);

  // Replay a fresh trace through both greedy policies side by side.
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster ca(cfg, trained, power);
  sim::Cluster cb(cfg, restored, power);
  const auto jobs = trace(200, 17);
  for (const auto& job : jobs) {
    EXPECT_EQ(trained.select_server(ca, job), restored.select_server(cb, job));
  }
}

// The checkpoint format is precision-agnostic (decimal text at full double
// precision): an f64-trained model loads into an f32 allocator — and round
// trips through an f32 save — with only f32 rounding, so the two agree on
// the Q-value ranking almost everywhere.
TEST(DrlPersistence, CheckpointCrossesPrecisions) {
  const std::string path64 = testing::TempDir() + "/hcrl_drl_model_f64.txt";
  const std::string path32 = testing::TempDir() + "/hcrl_drl_model_f32.txt";

  DrlAllocator trained(small_opts());
  {
    sim::ImmediateSleepPolicy power;
    sim::ClusterConfig cfg;
    cfg.num_servers = 6;
    sim::Cluster cluster(cfg, trained, power);
    cluster.load_jobs(trace(600, 3));
    cluster.run();
  }
  ASSERT_GT(trained.train_steps(), 0);
  trained.save_model(path64);

  DrlAllocatorOptions f32_opts = small_opts();
  f32_opts.seed = 99;
  f32_opts.qnet.precision = nn::Precision::kF32;
  DrlAllocator restored32(f32_opts);
  restored32.load_model(path64);
  restored32.save_model(path32);  // f32 save also round-trips
  DrlAllocator again32(f32_opts);
  again32.load_model(path32);

  trained.set_learning(false);
  restored32.set_learning(false);
  again32.set_learning(false);

  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 6;
  sim::Cluster ca(cfg, trained, power);
  sim::Cluster cb(cfg, restored32, power);
  sim::Cluster cc(cfg, again32, power);
  const auto jobs = trace(200, 17);
  int agree = 0;
  for (const auto& job : jobs) {
    const auto a = trained.select_server(ca, job);
    const auto b = restored32.select_server(cb, job);
    const auto c = again32.select_server(cc, job);
    EXPECT_EQ(b, c) << "f32 round trip must be exact";
    agree += a == b ? 1 : 0;
  }
  // Near-tie Q-values may flip under f32 rounding; wholesale disagreement
  // would mean the checkpoint did not really cross.
  EXPECT_GE(agree, static_cast<int>(jobs.size()) * 9 / 10) << agree << "/" << jobs.size();
}

TEST(DrlPersistence, LoadIntoMismatchedArchitectureFails) {
  const std::string path = testing::TempDir() + "/hcrl_drl_model2.txt";
  DrlAllocator a(small_opts());
  a.save_model(path);
  auto other = small_opts();
  other.qnet.subq_hidden = 24;
  DrlAllocator b(other);
  EXPECT_THROW(b.load_model(path), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::core
