#include "src/sim/policies.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/cluster.hpp"

namespace hcrl::sim {
namespace {

Job make_job(JobId id, Time arrival, Time duration = 60.0, double cpu = 0.2) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = ResourceVector{cpu, cpu, 0.01};
  return j;
}

ClusterConfig awake_cluster(std::size_t n) {
  ClusterConfig cfg;
  cfg.num_servers = n;
  cfg.server.start_asleep = false;
  return cfg;
}

TEST(RoundRobinAllocator, CyclesThroughServers) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), alloc, power);
  const Job j = make_job(1, 0.0);
  EXPECT_EQ(alloc.select_server(c, j), 0u);
  EXPECT_EQ(alloc.select_server(c, j), 1u);
  EXPECT_EQ(alloc.select_server(c, j), 2u);
  EXPECT_EQ(alloc.select_server(c, j), 0u);
}

TEST(RandomAllocator, StaysInRangeAndCoversServers) {
  common::Rng rng(1);
  RandomAllocator alloc(rng);
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(4), alloc, power);
  const Job j = make_job(1, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) {
    const ServerId s = alloc.select_server(c, j);
    ASSERT_LT(s, 4u);
    ++counts[s];
  }
  for (int count : counts) EXPECT_GT(count, 50);
}

TEST(LeastLoadedAllocator, PrefersEmptiestAwakeServer) {
  LeastLoadedAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), alloc, power);
  // Occupy server 0 heavily via direct simulation.
  c.load_jobs({make_job(1, 0.0, 10000.0, 0.9)});
  c.step();  // arrival -> least loaded picks server 0 (all tied, first wins)
  const Job next = make_job(2, 1.0);
  const ServerId chosen = alloc.select_server(c, next);
  EXPECT_NE(chosen, 0u);  // server 0 now has 0.9 CPU load
}

TEST(LeastLoadedAllocator, WakesSleepingServerWhenSaturated) {
  LeastLoadedAllocator alloc;
  AlwaysOnPolicy power;
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.server.start_asleep = true;  // everything asleep
  Cluster c(cfg, alloc, power);
  const ServerId chosen = alloc.select_server(c, make_job(1, 0.0, 10.0, 0.5));
  EXPECT_LT(chosen, 2u);  // picks some sleeping server rather than crashing
}

TEST(FirstFitPackingAllocator, PacksOntoBusiestFittingServer) {
  FirstFitPackingAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), alloc, power);
  c.load_jobs({make_job(1, 0.0, 10000.0, 0.5)});
  c.step();  // job lands on server 0 (first fit among idle)
  // Server 0 is busiest and still fits a 0.3 job -> pack there.
  EXPECT_EQ(alloc.select_server(c, make_job(2, 1.0, 10.0, 0.3)), 0u);
  // A 0.6 job does not fit on server 0 -> goes elsewhere.
  EXPECT_NE(alloc.select_server(c, make_job(3, 2.0, 10.0, 0.6)), 0u);
}

TEST(PowerPolicies, TimeoutValues) {
  ClusterMetrics metrics(1);
  ServerConfig cfg;
  cfg.start_asleep = false;
  Server s(0, cfg, &metrics);

  AlwaysOnPolicy always_on;
  EXPECT_EQ(always_on.on_idle(s, 0.0), kNeverSleep);

  ImmediateSleepPolicy immediate;
  EXPECT_DOUBLE_EQ(immediate.on_idle(s, 0.0), 0.0);

  FixedTimeoutPolicy fixed(45.0);
  EXPECT_DOUBLE_EQ(fixed.on_idle(s, 0.0), 45.0);
  EXPECT_DOUBLE_EQ(fixed.timeout(), 45.0);
}

TEST(PowerPolicies, FixedTimeoutRejectsNegative) {
  EXPECT_THROW(FixedTimeoutPolicy(-1.0), std::invalid_argument);
}

TEST(Policies, NamesAreStable) {
  RoundRobinAllocator rr;
  EXPECT_EQ(rr.name(), "round-robin");
  LeastLoadedAllocator ll;
  EXPECT_EQ(ll.name(), "least-loaded");
  FirstFitPackingAllocator ff;
  EXPECT_EQ(ff.name(), "first-fit-packing");
  AlwaysOnPolicy on;
  EXPECT_EQ(on.name(), "always-on");
  ImmediateSleepPolicy is;
  EXPECT_EQ(is.name(), "immediate-sleep");
}

}  // namespace
}  // namespace hcrl::sim
