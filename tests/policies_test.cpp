#include "src/sim/policies.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/cluster.hpp"

namespace hcrl::sim {
namespace {

Job make_job(JobId id, Time arrival, Time duration = 60.0, double cpu = 0.2) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = ResourceVector{cpu, cpu, 0.01};
  return j;
}

ClusterConfig awake_cluster(std::size_t n) {
  ClusterConfig cfg;
  cfg.num_servers = n;
  cfg.server.start_asleep = false;
  return cfg;
}

TEST(RoundRobinAllocator, CyclesThroughServers) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), alloc, power);
  const Job j = make_job(1, 0.0);
  EXPECT_EQ(alloc.select_server(c, j), 0u);
  EXPECT_EQ(alloc.select_server(c, j), 1u);
  EXPECT_EQ(alloc.select_server(c, j), 2u);
  EXPECT_EQ(alloc.select_server(c, j), 0u);
}

TEST(RandomAllocator, StaysInRangeAndCoversServers) {
  common::Rng rng(1);
  RandomAllocator alloc(rng);
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(4), alloc, power);
  const Job j = make_job(1, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) {
    const ServerId s = alloc.select_server(c, j);
    ASSERT_LT(s, 4u);
    ++counts[s];
  }
  for (int count : counts) EXPECT_GT(count, 50);
}

TEST(LeastLoadedAllocator, PrefersEmptiestAwakeServer) {
  LeastLoadedAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), alloc, power);
  // Occupy server 0 heavily via direct simulation.
  c.load_jobs({make_job(1, 0.0, 10000.0, 0.9)});
  c.step();  // arrival -> least loaded picks server 0 (all tied, first wins)
  const Job next = make_job(2, 1.0);
  const ServerId chosen = alloc.select_server(c, next);
  EXPECT_NE(chosen, 0u);  // server 0 now has 0.9 CPU load
}

TEST(LeastLoadedAllocator, WakesSleepingServerWhenSaturated) {
  LeastLoadedAllocator alloc;
  AlwaysOnPolicy power;
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.server.start_asleep = true;  // everything asleep
  Cluster c(cfg, alloc, power);
  const ServerId chosen = alloc.select_server(c, make_job(1, 0.0, 10.0, 0.5));
  EXPECT_LT(chosen, 2u);  // picks some sleeping server rather than crashing
}

TEST(FirstFitPackingAllocator, PacksOntoBusiestFittingServer) {
  FirstFitPackingAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), alloc, power);
  c.load_jobs({make_job(1, 0.0, 10000.0, 0.5)});
  c.step();  // job lands on server 0 (first fit among idle)
  // Server 0 is busiest and still fits a 0.3 job -> pack there.
  EXPECT_EQ(alloc.select_server(c, make_job(2, 1.0, 10.0, 0.3)), 0u);
  // A 0.6 job does not fit on server 0 -> goes elsewhere.
  EXPECT_NE(alloc.select_server(c, make_job(3, 2.0, 10.0, 0.6)), 0u);
}

Job make_shaped_job(JobId id, Time arrival, double cpu, double mem, Time duration = 10000.0) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = ResourceVector{cpu, mem, 0.01};
  return j;
}

TEST(BestFitAllocator, PicksTightestFittingServer) {
  RoundRobinAllocator router;
  BestFitAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), router, power);
  c.load_jobs({make_job(1, 0.0, 10000.0, 0.5)});
  c.step();  // round-robin lands the filler on server 0
  // Server 0 has the least capacity left over -> best fit for a 0.3 job.
  EXPECT_EQ(alloc.select_server(c, make_job(2, 1.0, 10.0, 0.3)), 0u);
  // A 0.6 job does not fit on server 0 -> tightest among the rest (tie -> 1).
  EXPECT_EQ(alloc.select_server(c, make_job(3, 2.0, 10.0, 0.6)), 1u);
}

TEST(WorstFitAllocator, PicksLoosestFittingServer) {
  RoundRobinAllocator router;
  WorstFitAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(3), router, power);
  c.load_jobs({make_job(1, 0.0, 10000.0, 0.5)});
  c.step();  // filler on server 0
  // Servers 1 and 2 are emptier; the first strictly-loosest wins (server 1).
  EXPECT_EQ(alloc.select_server(c, make_job(2, 1.0, 10.0, 0.3)), 1u);
}

TEST(TetrisAllocator, AlignsDemandShapeWithFreeCapacity) {
  RoundRobinAllocator router;
  TetrisAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(awake_cluster(2), router, power);
  // Server 0 keeps a memory-heavy resident (cpu-rich remainder); server 1 a
  // cpu-heavy resident (memory-rich remainder).
  c.load_jobs({make_shaped_job(1, 0.0, 0.1, 0.8), make_shaped_job(2, 0.5, 0.8, 0.1)});
  c.step();
  c.step();
  // Both probes fit both servers, so the dot product decides: a cpu-heavy
  // job aligns with server 0's cpu-rich free capacity...
  EXPECT_EQ(alloc.select_server(c, make_shaped_job(3, 1.0, 0.15, 0.05, 10.0)), 0u);
  // ...and a memory-heavy job with server 1's memory-rich free capacity.
  EXPECT_EQ(alloc.select_server(c, make_shaped_job(4, 2.0, 0.05, 0.15, 10.0)), 1u);
}

TEST(RandomKAllocator, SeededStreamIsDeterministicAndInRange) {
  AlwaysOnPolicy power;
  RoundRobinAllocator router;
  Cluster c(awake_cluster(5), router, power);
  RandomKAllocator a(3, common::Rng(99));
  RandomKAllocator b(3, common::Rng(99));
  for (int i = 0; i < 50; ++i) {
    const Job j = make_job(static_cast<JobId>(i + 1), static_cast<Time>(i));
    const ServerId sa = a.select_server(c, j);
    ASSERT_LT(sa, 5u);
    EXPECT_EQ(sa, b.select_server(c, j));
  }
}

TEST(RandomKAllocator, RejectsZeroK) {
  EXPECT_THROW(RandomKAllocator(0, common::Rng(1)), std::invalid_argument);
}

TEST(NewAllocators, RoutingModeReadsGlobalState) {
  // All four heuristics read live server state, so they must NOT declare the
  // trace-only fast path (the sharded engine would skip arrival syncs).
  BestFitAllocator best;
  WorstFitAllocator worst;
  TetrisAllocator tetris;
  RandomKAllocator rk(2, common::Rng(1));
  for (const AllocationPolicy* p :
       {static_cast<const AllocationPolicy*>(&best), static_cast<const AllocationPolicy*>(&worst),
        static_cast<const AllocationPolicy*>(&tetris),
        static_cast<const AllocationPolicy*>(&rk)}) {
    EXPECT_EQ(p->routing_mode(), AllocationPolicy::RoutingMode::kGlobalState);
  }
}

TEST(PowerPolicies, TimeoutValues) {
  ClusterMetrics metrics(1);
  ServerConfig cfg;
  cfg.start_asleep = false;
  Server s(0, cfg, &metrics);

  AlwaysOnPolicy always_on;
  EXPECT_EQ(always_on.on_idle(s, 0.0), kNeverSleep);

  ImmediateSleepPolicy immediate;
  EXPECT_DOUBLE_EQ(immediate.on_idle(s, 0.0), 0.0);

  FixedTimeoutPolicy fixed(45.0);
  EXPECT_DOUBLE_EQ(fixed.on_idle(s, 0.0), 45.0);
  EXPECT_DOUBLE_EQ(fixed.timeout(), 45.0);
}

TEST(PowerPolicies, FixedTimeoutRejectsNegative) {
  EXPECT_THROW(FixedTimeoutPolicy(-1.0), std::invalid_argument);
}

TEST(Policies, NamesAreStable) {
  RoundRobinAllocator rr;
  EXPECT_EQ(rr.name(), "round-robin");
  LeastLoadedAllocator ll;
  EXPECT_EQ(ll.name(), "least-loaded");
  FirstFitPackingAllocator ff;
  EXPECT_EQ(ff.name(), "first-fit-packing");
  AlwaysOnPolicy on;
  EXPECT_EQ(on.name(), "always-on");
  ImmediateSleepPolicy is;
  EXPECT_EQ(is.name(), "immediate-sleep");
  BestFitAllocator bf;
  EXPECT_EQ(bf.name(), "best-fit");
  WorstFitAllocator wf;
  EXPECT_EQ(wf.name(), "worst-fit");
  TetrisAllocator tt;
  EXPECT_EQ(tt.name(), "tetris");
  RandomKAllocator rk(4, common::Rng(1));
  EXPECT_EQ(rk.name(), "random-4");
}

}  // namespace
}  // namespace hcrl::sim
