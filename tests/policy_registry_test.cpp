// Registry-wide audit: every registered policy's declared metadata (routing
// mode, shard-parallel safety, learning) must match what the constructed
// instance reports, and every entry must run on both cluster engines. Plus
// the did-you-mean diagnostics contract for unknown names and option keys.
#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/suggest.hpp"
#include "src/core/config_binding.hpp"
#include "src/core/predictor.hpp"
#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/policy/registry.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/sharded_cluster.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace hcrl;

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.num_servers = 6;
  cfg.num_groups = 2;
  cfg.trace.num_jobs = 120;
  cfg.trace.horizon_s = 4000.0;
  cfg.trace.seed = 21;
  cfg.local.predictor = "window";  // keep the rl-dpm audit cells cheap
  cfg.pretrain_jobs = 0;
  cfg.checkpoint_every_jobs = 0;
  cfg.finalize();
  return cfg;
}

std::vector<sim::Job> tiny_trace() {
  workload::GeneratorOptions opts;
  opts.num_jobs = 120;
  opts.horizon_s = 4000.0;
  opts.seed = 21;
  return workload::GoogleTraceGenerator(opts).generate();
}

// ---- metadata audit --------------------------------------------------------

TEST(PolicyRegistryAudit, AllocatorMetadataMatchesInstances) {
  const auto& reg = policy::PolicyRegistry::builtin();
  const core::ExperimentConfig cfg = tiny_config();
  ASSERT_GE(reg.allocator_names().size(), 9u);
  for (const std::string& name : reg.allocator_names()) {
    SCOPED_TRACE(name);
    const policy::AllocatorInfo& info = reg.allocator_info(name);
    policy::BuiltAllocator built = reg.make_allocator(name, cfg);
    ASSERT_NE(built.policy, nullptr);
    EXPECT_EQ(built.policy->routing_mode(), info.routing);
    EXPECT_EQ(built.drl != nullptr, info.learning);
  }
}

TEST(PolicyRegistryAudit, PowerMetadataMatchesInstances) {
  const auto& reg = policy::PolicyRegistry::builtin();
  const core::ExperimentConfig cfg = tiny_config();
  ASSERT_GE(reg.power_names().size(), 4u);
  for (const std::string& name : reg.power_names()) {
    SCOPED_TRACE(name);
    const policy::PowerInfo& info = reg.power_info(name);
    policy::BuiltPower built = reg.make_power(name, cfg);
    ASSERT_NE(built.policy, nullptr);
    EXPECT_EQ(built.policy->shard_parallel_safe(), info.shard_parallel_safe);
    EXPECT_EQ(built.rl != nullptr, info.learning);
  }
}

// ---- every entry runs on both engines --------------------------------------

// Drive each allocator through the registry-backed driver on the serial
// engine, the one-shard sharded engine (bit-identity contract) and two-shard
// lockstep (must complete; order differs, totals agree on completed jobs).
TEST(PolicyRegistryAudit, EveryAllocatorRunsOnBothEngines) {
  const auto& reg = policy::PolicyRegistry::builtin();
  for (const std::string& name : reg.allocator_names()) {
    SCOPED_TRACE(name);
    core::Scenario scenario;
    scenario.name = "audit/" + name;
    scenario.config = tiny_config();
    scenario.config.allocator = name;
    scenario.config.power = "immediate-sleep";

    scenario.config.shards = 0;
    const core::ExperimentResult serial = core::run_scenario(scenario);
    EXPECT_EQ(serial.allocator, name);
    EXPECT_EQ(serial.power, "immediate-sleep");
    EXPECT_EQ(serial.final_snapshot.jobs_completed, 120u);
    EXPECT_GT(serial.latency_p99_s, 0.0);
    EXPECT_GE(serial.latency_p99_s, serial.latency_p95_s);

    scenario.config.shards = 1;
    const core::ExperimentResult sharded = core::run_scenario(scenario);
    EXPECT_EQ(sharded.final_snapshot.energy_joules, serial.final_snapshot.energy_joules);
    EXPECT_EQ(sharded.final_snapshot.accumulated_latency_s,
              serial.final_snapshot.accumulated_latency_s);
    EXPECT_EQ(sharded.latency_p95_s, serial.latency_p95_s);
    EXPECT_EQ(sharded.latency_p99_s, serial.latency_p99_s);

    scenario.config.shards = 2;
    const core::ExperimentResult two = core::run_scenario(scenario);
    EXPECT_EQ(two.final_snapshot.jobs_completed, 120u);
  }
}

TEST(PolicyRegistryAudit, EveryPowerPolicyRunsOnBothEngines) {
  const auto& reg = policy::PolicyRegistry::builtin();
  for (const std::string& name : reg.power_names()) {
    SCOPED_TRACE(name);
    core::Scenario scenario;
    scenario.name = "audit/" + name;
    scenario.config = tiny_config();
    scenario.config.allocator = "round-robin";
    scenario.config.power = name;

    scenario.config.shards = 0;
    const core::ExperimentResult serial = core::run_scenario(scenario);
    EXPECT_EQ(serial.power, name);
    EXPECT_EQ(serial.final_snapshot.jobs_completed, 120u);

    scenario.config.shards = 1;
    const core::ExperimentResult sharded = core::run_scenario(scenario);
    EXPECT_EQ(sharded.final_snapshot.energy_joules, serial.final_snapshot.energy_joules);
    EXPECT_EQ(sharded.latency_p99_s, serial.latency_p99_s);

    scenario.config.shards = 2;
    const core::ExperimentResult two = core::run_scenario(scenario);
    EXPECT_EQ(two.final_snapshot.jobs_completed, 120u);
  }
}

// Declared flags gate the threaded sharded mode: every kTraceOnly allocator
// × shard-parallel-safe power pair must actually run under Execution::
// kParallel (a wrong declaration would throw or race here).
TEST(PolicyRegistryAudit, DeclaredSafeEntriesRunInParallelShardedMode) {
  const auto& reg = policy::PolicyRegistry::builtin();
  const core::ExperimentConfig cfg = tiny_config();
  for (const std::string& alloc_name : reg.allocator_names()) {
    const policy::AllocatorInfo& alloc_info = reg.allocator_info(alloc_name);
    if (alloc_info.routing != sim::AllocationPolicy::RoutingMode::kTraceOnly) continue;
    for (const std::string& power_name : reg.power_names()) {
      const policy::PowerInfo& power_info = reg.power_info(power_name);
      if (!power_info.shard_parallel_safe) continue;
      SCOPED_TRACE(alloc_name + "+" + power_name);
      policy::BuiltAllocator alloc = reg.make_allocator(alloc_name, cfg);
      policy::BuiltPower power = reg.make_power(power_name, cfg);
      sim::ShardedClusterConfig scc;
      scc.cluster.num_servers = cfg.num_servers;
      scc.cluster.server = cfg.server;
      scc.num_shards = 2;
      scc.execution = sim::ShardedClusterConfig::Execution::kParallel;
      sim::ShardedCluster cluster(scc, *alloc.policy, *power.policy);
      cluster.load_jobs(tiny_trace());
      cluster.run();
      EXPECT_EQ(cluster.jobs_completed(), 120u);
    }
  }
}

// ---- system resolution -----------------------------------------------------

TEST(PolicyRegistry, OverrideReplacesHalfOfTheSystemPair) {
  core::ExperimentConfig cfg = tiny_config();
  cfg.system = core::SystemKind::kRoundRobin;
  cfg.allocator = "tetris";
  const policy::ResolvedSystem sel = policy::resolve_system(cfg);
  EXPECT_EQ(sel.allocator, "tetris");
  EXPECT_EQ(sel.power, "always-on");  // kept from the system enum

  const core::ExperimentResult r = core::run_experiment(cfg);
  EXPECT_EQ(r.system, "round-robin");  // enum string is unchanged
  EXPECT_EQ(r.allocator, "tetris");
  EXPECT_EQ(r.power, "always-on");
}

TEST(PolicyRegistry, OptionBlockWithoutPolicyKeyIsRejected) {
  core::ExperimentConfig cfg = tiny_config();
  cfg.allocator_opts.set("k", static_cast<std::int64_t>(4));
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PolicyRegistry, PerPolicyOptionsReachTheFactory) {
  core::ExperimentConfig cfg = tiny_config();
  cfg.allocator = "random-k";
  cfg.allocator_opts.set("k", static_cast<std::int64_t>(2));
  cfg.power = "fixed-timeout";
  cfg.power_opts.set("timeout_s", 45.0);
  policy::SystemBundle bundle = policy::build_system(cfg);
  EXPECT_EQ(bundle.allocation->name(), "random-2");
  EXPECT_EQ(bundle.power->name(), "fixed-timeout-45.000000");
}

// ---- did-you-mean diagnostics ----------------------------------------------

void expect_throw_containing(const std::function<void()>& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument mentioning: " << needle;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(PolicySuggestions, UnknownAllocatorSuggestsNearestName) {
  expect_throw_containing(
      [] { policy::PolicyRegistry::builtin().allocator_info("best-fti"); },
      "did you mean 'best-fit'");
}

TEST(PolicySuggestions, UnknownPowerSuggestsNearestName) {
  expect_throw_containing(
      [] {
        policy::PolicyRegistry::builtin().make_power("rl-dmp", tiny_config());
      },
      "did you mean 'rl-dpm'");
}

TEST(PolicySuggestions, UnknownOptionKeySuggestsSchemaKey) {
  expect_throw_containing(
      [] {
        common::Config opts;
        opts.set("kk", static_cast<std::int64_t>(4));
        policy::PolicyRegistry::builtin().make_allocator("random-k", tiny_config(), opts);
      },
      "did you mean 'k'");
}

TEST(PolicySuggestions, ConfigFileTypoSuggestsAllocator) {
  const auto raw = common::Config::from_string(
      "system = round-robin\n"
      "allocator = bestfit\n");
  expect_throw_containing([&] { core::experiment_config_from(raw); }, "did you mean 'best-fit'");
}

TEST(PolicySuggestions, UnknownSystemKindSuggestsNearestName) {
  const auto raw = common::Config::from_string("system = hierarchial\n");
  expect_throw_containing([&] { core::experiment_config_from(raw); },
                          "did you mean 'hierarchical'");
}

TEST(PolicySuggestions, UnknownPredictorSuggestsNearestKind) {
  core::ExperimentConfig cfg = tiny_config();
  cfg.system = core::SystemKind::kHierarchical;
  cfg.local.predictor = "lsm";
  expect_throw_containing([&] { cfg.validate(); }, "did you mean 'lstm'");
  // The same check guards the per-policy predictor override.
  core::ExperimentConfig cfg2 = tiny_config();
  cfg2.power = "rl-dpm";
  cfg2.power_opts.set("predictor", "windwo");
  expect_throw_containing([&] { cfg2.validate(); }, "did you mean 'window'");
}

TEST(PolicySuggestions, MakePredictorUsesSharedDiagnostic) {
  core::LstmPredictorOptions lstm;
  expect_throw_containing([&] { core::make_predictor("sliding-meen", lstm); },
                          "did you mean 'sliding-mean'");
}

// ---- suggest helper --------------------------------------------------------

TEST(Suggest, EditDistanceBasics) {
  EXPECT_EQ(common::edit_distance("", ""), 0u);
  EXPECT_EQ(common::edit_distance("abc", ""), 3u);
  EXPECT_EQ(common::edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(common::edit_distance("best-fit", "best-fti"), 2u);
}

TEST(Suggest, ClosestMatchRespectsThreshold) {
  const std::vector<std::string> names = {"alpha", "beta", "gamma"};
  EXPECT_EQ(common::closest_match("alpah", names).value_or(""), "alpha");
  EXPECT_FALSE(common::closest_match("zzzzzzzzz", names).has_value());
  EXPECT_FALSE(common::closest_match("x", {}).has_value());
}

TEST(Suggest, MessageListsValidNamesEvenWithoutGuess) {
  const std::string msg = common::unknown_key_message("thing", "zzz", {"aa", "bb"});
  EXPECT_NE(msg.find("unknown thing 'zzz'"), std::string::npos);
  EXPECT_EQ(msg.find("did you mean"), std::string::npos);
  EXPECT_NE(msg.find("valid: aa bb"), std::string::npos);
}

}  // namespace
