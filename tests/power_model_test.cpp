#include "src/sim/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hcrl::sim {
namespace {

TEST(PowerModel, EndpointsMatchEqnThree) {
  // P(x) = P0 + (P1 - P0)(2x - x^1.4): P(0) = P0, P(1) = P1.
  const PowerModel m;
  EXPECT_DOUBLE_EQ(m.active_power(0.0), 87.0);
  EXPECT_DOUBLE_EQ(m.active_power(1.0), 145.0);
}

TEST(PowerModel, MidpointMatchesClosedForm) {
  const PowerModel m;
  const double x = 0.5;
  const double expected = 87.0 + (145.0 - 87.0) * (2.0 * x - std::pow(x, 1.4));
  EXPECT_DOUBLE_EQ(m.active_power(x), expected);
}

TEST(PowerModel, ClampsUtilization) {
  const PowerModel m;
  EXPECT_DOUBLE_EQ(m.active_power(-0.5), m.active_power(0.0));
  EXPECT_DOUBLE_EQ(m.active_power(1.5), m.active_power(1.0));
}

TEST(PowerModel, ValidateRejectsBadConfigs) {
  PowerModel m;
  m.idle_watts = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = PowerModel{};
  m.peak_watts = 50.0;  // below idle
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = PowerModel{};
  m.sleep_watts = -0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = PowerModel{};
  EXPECT_NO_THROW(m.validate());
}

// Property: the curve is monotonically increasing on [0, 1] and always
// between idle and peak (2x - x^1.4 is increasing with range [0, 1]).
class PowerCurve : public testing::TestWithParam<double> {};

TEST_P(PowerCurve, MonotoneAndBounded) {
  const PowerModel m;
  const double x = GetParam();
  const double p = m.active_power(x);
  EXPECT_GE(p, m.idle_watts);
  EXPECT_LE(p, m.peak_watts);
  const double p_next = m.active_power(x + 0.01);
  EXPECT_GE(p_next, p);
}

INSTANTIATE_TEST_SUITE_P(Utilizations, PowerCurve,
                         testing::Values(0.0, 0.05, 0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.98));

TEST(PowerModel, SuperlinearEarlyRise) {
  // The Fan et al. curve rises fast at low utilization: P(0.2) is already
  // ~30% of the way from idle to peak (2x - x^1.4 = 0.2948 at x = 0.2).
  const PowerModel m;
  const double frac = (m.active_power(0.2) - m.idle_watts) / (m.peak_watts - m.idle_watts);
  EXPECT_NEAR(frac, 0.2948, 0.001);
  EXPECT_GT(frac, 0.2);  // clearly superlinear versus the 0.2 a linear model gives
}

}  // namespace
}  // namespace hcrl::sim
