#include "src/core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hcrl::core {
namespace {

TEST(LastValuePredictor, ReturnsPriorThenLast) {
  LastValuePredictor p(600.0);
  EXPECT_DOUBLE_EQ(p.predict(), 600.0);
  p.observe(42.0);
  EXPECT_DOUBLE_EQ(p.predict(), 42.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
}

TEST(SlidingMeanPredictor, WindowedAverage) {
  SlidingMeanPredictor p(3, 100.0);
  EXPECT_DOUBLE_EQ(p.predict(), 100.0);
  p.observe(10.0);
  p.observe(20.0);
  EXPECT_DOUBLE_EQ(p.predict(), 15.0);
  p.observe(30.0);
  p.observe(40.0);  // evicts 10
  EXPECT_DOUBLE_EQ(p.predict(), 30.0);
}

TEST(SlidingMeanPredictor, OutlierSensitivityMotivatesLstm) {
  // The paper's §VI-A argument: one very long inter-arrival ruins a set of
  // subsequent linear predictions.
  SlidingMeanPredictor p(5, 10.0);
  for (int i = 0; i < 5; ++i) p.observe(10.0);
  p.observe(10000.0);
  EXPECT_GT(p.predict(), 1000.0);  // wildly off for the next few predictions
}

TEST(SlidingMeanPredictor, ZeroWindowThrows) {
  EXPECT_THROW(SlidingMeanPredictor(0), std::invalid_argument);
}

TEST(LstmPredictorOptions, Validation) {
  LstmPredictorOptions o;
  EXPECT_NO_THROW(o.validate());
  o.lookback = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = LstmPredictorOptions{};
  o.history_capacity = o.lookback;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = LstmPredictorOptions{};
  o.norm_scale_s = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(LstmPredictor, NormalizeDenormalizeRoundTrip) {
  LstmPredictorOptions o;
  LstmPredictor p(o);
  for (double x : {0.0, 1.0, 30.0, 600.0, 3600.0, 20000.0}) {
    EXPECT_NEAR(p.denormalize(p.normalize(x)), x, 1e-6 * std::max(1.0, x));
  }
}

TEST(LstmPredictor, PriorBeforeWarmup) {
  LstmPredictorOptions o;
  o.prior_s = 123.0;
  LstmPredictor p(o);
  EXPECT_DOUBLE_EQ(p.predict(), 123.0);
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(p.predict(), 123.0);  // still fewer than lookback samples
}

TEST(LstmPredictor, RejectsNegativeInterArrival) {
  LstmPredictor p(LstmPredictorOptions{});
  EXPECT_THROW(p.observe(-1.0), std::invalid_argument);
}

TEST(LstmPredictor, PredictionIsFiniteAndNonNegative) {
  LstmPredictorOptions o;
  o.lookback = 10;
  LstmPredictor p(o);
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) p.observe(rng.exponential(1.0 / 60.0));
  const double pred = p.predict();
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_GE(pred, 0.0);
}

TEST(LstmPredictor, LearnsAlternatingPattern) {
  // Inter-arrivals alternate 30, 300, 30, 300, ... A linear window-mean
  // predictor is stuck at ~165 for every step; the LSTM should learn to
  // discriminate the two phases. We check training loss decreases strongly.
  LstmPredictorOptions o;
  o.lookback = 8;
  o.hidden_units = 12;
  o.train_interval = 1;
  o.train_windows = 2;
  o.learning_rate = 5e-3;
  LstmPredictor p(o);
  double early_loss = 0.0;
  int early_count = 0;
  for (int i = 0; i < 60; ++i) {
    p.observe(i % 2 == 0 ? 30.0 : 300.0);
    if (i >= 20 && i < 40 && p.last_training_loss() >= 0.0) {
      early_loss += p.last_training_loss();
      ++early_count;
    }
  }
  double late_loss = 0.0;
  int late_count = 0;
  for (int i = 60; i < 400; ++i) {
    p.observe(i % 2 == 0 ? 30.0 : 300.0);
    if (i >= 360) {
      late_loss += p.last_training_loss();
      ++late_count;
    }
  }
  ASSERT_GT(early_count, 0);
  ASSERT_GT(late_count, 0);
  EXPECT_LT(late_loss / late_count, 0.5 * early_loss / early_count);
}

TEST(LstmPredictor, AccuracyBeatsSlidingMeanOnPeriodicSignal) {
  // Downstream ablation (paper argument): LSTM vs the linear baseline on a
  // deterministic periodic inter-arrival pattern.
  LstmPredictorOptions o;
  o.lookback = 12;
  o.hidden_units = 16;
  o.train_interval = 1;
  o.train_windows = 3;
  o.learning_rate = 5e-3;
  LstmPredictor lstm(o);
  SlidingMeanPredictor mean(12, 100.0);

  auto signal = [](int i) { return i % 3 == 2 ? 600.0 : 60.0; };
  // Warm up both predictors.
  for (int i = 0; i < 900; ++i) {
    lstm.observe(signal(i));
    mean.observe(signal(i));
  }
  double lstm_err = 0.0, mean_err = 0.0;
  for (int i = 900; i < 960; ++i) {
    const double target = signal(i);
    lstm_err += std::abs(lstm.predict() - target);
    mean_err += std::abs(mean.predict() - target);
    lstm.observe(target);
    mean.observe(target);
  }
  EXPECT_LT(lstm_err, mean_err);
}

TEST(LstmPredictor, TrainWindowValidation) {
  LstmPredictorOptions o;
  o.lookback = 5;
  LstmPredictor p(o);
  for (int i = 0; i < 10; ++i) p.observe(10.0);
  EXPECT_THROW(p.train_window(3), std::invalid_argument);    // < lookback
  EXPECT_THROW(p.train_window(100), std::invalid_argument);  // past history
  EXPECT_GE(p.train_window(7), 0.0);
}

TEST(MakePredictor, FactoryDispatch) {
  LstmPredictorOptions o;
  EXPECT_EQ(make_predictor("lstm", o)->name(), "lstm");
  EXPECT_EQ(make_predictor("last-value", o)->name(), "last-value");
  EXPECT_EQ(make_predictor("sliding-mean", o)->name(), "sliding-mean");
  EXPECT_EQ(make_predictor("ar", o)->name(), "ar");
  EXPECT_THROW(make_predictor("nope", o), std::invalid_argument);
}

TEST(ArPredictor, ConstructionValidation) {
  EXPECT_THROW(ArPredictor(0), std::invalid_argument);
  EXPECT_THROW(ArPredictor(4, 600.0, 0), std::invalid_argument);
  EXPECT_THROW(ArPredictor(4, 600.0, 32, 5), std::invalid_argument);
  EXPECT_THROW(ArPredictor(4, 600.0, 32, 1024, -1.0), std::invalid_argument);
}

TEST(ArPredictor, FallsBackBeforeFitting) {
  ArPredictor p(4, 123.0);
  EXPECT_DOUBLE_EQ(p.predict(), 123.0);
  p.observe(50.0);
  EXPECT_DOUBLE_EQ(p.predict(), 50.0);  // last value until first refit
  EXPECT_FALSE(p.fitted());
}

TEST(ArPredictor, RecoversExactArOneProcess) {
  // x_t = 0.5 x_{t-1} + 20 exactly: after fitting, predictions must be
  // near-exact and coefficients close to the generating ones.
  ArPredictor p(2, 100.0, /*refit_interval=*/16);
  double x = 40.0;
  for (int i = 0; i < 400; ++i) {
    p.observe(x);
    x = 0.5 * x + 20.0;
  }
  ASSERT_TRUE(p.fitted());
  const double expected_next = 0.5 * x + 20.0;
  (void)expected_next;
  p.observe(x);
  EXPECT_NEAR(p.predict(), 0.5 * x + 20.0, 1.0);
}

TEST(ArPredictor, LearnsAlternatingPattern) {
  // 30, 300, 30, 300...: an AR(2) model captures this exactly
  // (x_t = x_{t-2}), unlike the sliding mean.
  ArPredictor ar(2, 100.0, 8);
  SlidingMeanPredictor mean(8, 100.0);
  for (int i = 0; i < 300; ++i) {
    const double v = i % 2 == 0 ? 30.0 : 300.0;
    ar.observe(v);
    mean.observe(v);
  }
  // Next value is 30 (i=300 even).
  EXPECT_NEAR(ar.predict(), 30.0, 5.0);
  EXPECT_NEAR(mean.predict(), 165.0, 5.0);  // the linear-mean failure mode
}

TEST(ArPredictor, RejectsNegativeObservation) {
  ArPredictor p(2);
  EXPECT_THROW(p.observe(-1.0), std::invalid_argument);
}

TEST(ArPredictor, PredictionsNeverNegative) {
  ArPredictor p(3, 10.0, 8);
  common::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    p.observe(rng.exponential(0.1));
    EXPECT_GE(p.predict(), 0.0);
  }
}

}  // namespace
}  // namespace hcrl::core
