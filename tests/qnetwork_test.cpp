#include "src/core/qnetwork.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::core {
namespace {

GroupedQOptions small_opts() {
  GroupedQOptions o;
  o.encoder.num_servers = 6;
  o.encoder.num_groups = 2;
  o.encoder.num_resources = 2;
  o.autoencoder_dims = {8, 4};
  o.subq_hidden = 16;
  o.learning_rate = 3e-3;
  o.autoencoder_train_interval = 4;
  o.autoencoder_batch = 8;
  return o;
}

nn::Vec random_state(const GroupedQOptions& o, common::Rng& rng) {
  nn::Vec s(o.encoder.full_state_dim());
  for (auto& v : s) v = rng.uniform();
  return s;
}

TEST(GroupedQOptions, Validation) {
  EXPECT_NO_THROW(small_opts().validate());
  auto o = small_opts();
  o.autoencoder_dims = {};
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.subq_hidden = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.learning_rate = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(GroupedQNetwork, DimensionsFollowFigSix) {
  common::Rng rng(1);
  const auto o = small_opts();
  GroupedQNetwork net(o, rng);
  EXPECT_EQ(net.num_actions(), 6u);
  // head input = raw group (3 servers * 4 features) + job (3) + 1 other code (4).
  EXPECT_EQ(net.head_input_dim(), 12u + 3u + 4u);
  common::Rng srng(2);
  const nn::Vec q = net.q_values(random_state(o, srng));
  EXPECT_EQ(q.size(), 6u);
}

TEST(GroupedQNetwork, SliceHelpers) {
  common::Rng rng(3);
  const auto o = small_opts();
  GroupedQNetwork net(o, rng);
  nn::Vec state(o.encoder.full_state_dim());
  for (std::size_t i = 0; i < state.size(); ++i) state[i] = static_cast<double>(i);
  const nn::Vec g0 = net.slice_group(state, 0);
  const nn::Vec g1 = net.slice_group(state, 1);
  const nn::Vec job = net.slice_job(state);
  EXPECT_EQ(g0.size(), o.encoder.group_state_dim());
  EXPECT_DOUBLE_EQ(g0[0], 0.0);
  EXPECT_DOUBLE_EQ(g1[0], static_cast<double>(o.encoder.group_state_dim()));
  EXPECT_DOUBLE_EQ(job.back(), static_cast<double>(state.size() - 1));
  EXPECT_THROW(net.slice_group(state, 2), std::out_of_range);
  EXPECT_THROW(net.slice_group(nn::Vec(3), 0), std::invalid_argument);
  EXPECT_THROW(net.slice_job(nn::Vec(3)), std::invalid_argument);
}

TEST(GroupedQNetwork, TargetSyncMakesOutputsEqual) {
  common::Rng rng(4);
  const auto o = small_opts();
  GroupedQNetwork net(o, rng);
  common::Rng srng(5);
  const nn::Vec s = random_state(o, srng);
  net.sync_target();
  const nn::Vec online = net.q_values(s);
  const nn::Vec target = net.q_values_target(s);
  for (std::size_t i = 0; i < online.size(); ++i) EXPECT_DOUBLE_EQ(online[i], target[i]);
}

TEST(GroupedQNetwork, TrainBatchFitsFixedTargets) {
  // Freeze a single transition with a long sojourn (so the bootstrap term
  // vanishes) and verify the Q-value of the chosen action moves toward
  // reward_rate / beta while training loss decreases.
  common::Rng rng(6);
  const auto o = small_opts();
  GroupedQNetwork net(o, rng);
  common::Rng srng(7);

  rl::Transition t;
  t.state = random_state(o, srng);
  t.next_state = random_state(o, srng);
  t.action = 4;  // group 1, local index 1
  t.reward_rate = -2.0;
  t.tau = 1e9;
  const double beta = 0.5;

  double first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double loss = net.train_batch({&t}, beta);
    if (i == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss);
  EXPECT_NEAR(net.q_values(t.state)[4], -2.0 / beta, 0.5);
}

TEST(GroupedQNetwork, TrainBatchRejectsEmpty) {
  common::Rng rng(8);
  GroupedQNetwork net(small_opts(), rng);
  EXPECT_THROW(net.train_batch({}, 0.5), std::invalid_argument);
}

TEST(GroupedQNetwork, ObserveStateTrainsAutoencoderEventually) {
  common::Rng rng(9);
  auto o = small_opts();
  GroupedQNetwork net(o, rng);
  common::Rng srng(10);
  common::Rng train_rng(11);
  double last = -1.0;
  for (int i = 0; i < 64; ++i) {
    const double loss = net.observe_state(random_state(o, srng), train_rng);
    if (loss >= 0.0) last = loss;
  }
  EXPECT_GE(last, 0.0) << "autoencoder batches should have run";
  EXPECT_GE(net.last_autoencoder_loss(), 0.0);
}

TEST(GroupedQNetwork, AutoencoderLossDecreasesOnStationaryStates) {
  common::Rng rng(12);
  auto o = small_opts();
  o.autoencoder_train_interval = 1;
  GroupedQNetwork net(o, rng);
  common::Rng srng(13);
  common::Rng train_rng(14);
  // A small fixed pool of states, fed repeatedly.
  std::vector<nn::Vec> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(random_state(o, srng));
  double first = -1.0, last = -1.0;
  for (int i = 0; i < 600; ++i) {
    const double loss = net.observe_state(pool[static_cast<std::size_t>(i) % pool.size()],
                                          train_rng);
    if (loss >= 0.0) {
      if (first < 0.0) first = loss;
      last = loss;
    }
  }
  ASSERT_GE(first, 0.0);
  EXPECT_LT(last, first);
}

TEST(GroupedQNetwork, WeightSharingMeansOneSubQParamSet) {
  common::Rng rng(15);
  const auto o = small_opts();
  GroupedQNetwork net(o, rng);
  // 2 groups share one head: parameter count equals a single head's.
  const std::size_t expected = (net.head_input_dim() * o.subq_hidden + o.subq_hidden) +
                               (o.subq_hidden * o.encoder.group_size() + o.encoder.group_size());
  EXPECT_EQ(net.subq_param_count(), expected);
}

}  // namespace
}  // namespace hcrl::core
