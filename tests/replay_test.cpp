#include "src/rl/replay.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace hcrl::rl {
namespace {

Transition make_transition(double marker) {
  Transition t;
  t.state = {marker};
  t.next_state = {marker};
  t.reward_rate = marker;
  t.tau = 1.0;
  return t;
}

TEST(ReplayBuffer, FillsToCapacityThenWraps) {
  ReplayBuffer<Transition> buf(3);
  for (int i = 0; i < 5; ++i) buf.push(make_transition(i));
  EXPECT_EQ(buf.size(), 3u);
  // Oldest entries (0, 1) are overwritten by 3 and 4.
  std::multiset<double> contents;
  for (std::size_t i = 0; i < buf.size(); ++i) contents.insert(buf.at(i).reward_rate);
  EXPECT_EQ(contents.count(0.0), 0u);
  EXPECT_EQ(contents.count(1.0), 0u);
  EXPECT_EQ(contents.count(2.0), 1u);
  EXPECT_EQ(contents.count(3.0), 1u);
  EXPECT_EQ(contents.count(4.0), 1u);
}

TEST(ReplayBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(ReplayBuffer<Transition>(0), std::invalid_argument);
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer<Transition> buf(4);
  common::Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), std::logic_error);
}

TEST(ReplayBuffer, SamplePointersAreValid) {
  ReplayBuffer<Transition> buf(10);
  for (int i = 0; i < 10; ++i) buf.push(make_transition(i));
  common::Rng rng(2);
  const auto batch = buf.sample(32, rng);
  EXPECT_EQ(batch.size(), 32u);
  for (const Transition* t : batch) {
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->reward_rate, 0.0);
    EXPECT_LE(t->reward_rate, 9.0);
  }
}

TEST(ReplayBuffer, SampleCoversBuffer) {
  ReplayBuffer<Transition> buf(8);
  for (int i = 0; i < 8; ++i) buf.push(make_transition(i));
  common::Rng rng(3);
  std::set<double> seen;
  for (const Transition* t : buf.sample(500, rng)) seen.insert(t->reward_rate);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ReplayBuffer, ClearEmpties) {
  ReplayBuffer<Transition> buf(4);
  buf.push(make_transition(1));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  // And it refills correctly afterwards.
  buf.push(make_transition(2));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_DOUBLE_EQ(buf.at(0).reward_rate, 2.0);
}

TEST(ReplayBuffer, GenericPayload) {
  ReplayBuffer<int> buf(2);
  buf.push(7);
  buf.push(8);
  buf.push(9);
  EXPECT_EQ(buf.size(), 2u);
}

}  // namespace
}  // namespace hcrl::rl
