#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hcrl::common {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of {2,3,4,5,6} appear
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(21);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(25);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(27);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(3.0), 0.0);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.log_uniform(60.0, 7200.0);
    EXPECT_GE(v, 60.0);
    EXPECT_LE(v, 7200.0 * (1.0 + 1e-12));
  }
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeightedIndexZeroWeightNeverChosen) {
  Rng rng(33);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  for (int i = 0; i < 2000; ++i) EXPECT_NE(rng.weighted_index(w), 1u);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(35);
  const std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) count1 += rng.weighted_index(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == child.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGeneratorBounds) {
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace hcrl::common
