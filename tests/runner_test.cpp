// The Scenario/Runner experiment API: trace sources, the scenario registry,
// up-front validation, observers, and — the load-bearing property — that a
// ParallelRunner produces bit-identical results to a SerialRunner for the
// same scenario batch, regardless of worker count and completion order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/core/trace_source.hpp"
#include "src/workload/trace_io.hpp"

namespace hcrl::core {
namespace {

// Bit-identical comparison (wall_seconds excluded: it measures this process,
// not the simulation).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.servers_on_at_end, b.servers_on_at_end);

  EXPECT_EQ(a.final_snapshot.now, b.final_snapshot.now);
  EXPECT_EQ(a.final_snapshot.jobs_arrived, b.final_snapshot.jobs_arrived);
  EXPECT_EQ(a.final_snapshot.jobs_completed, b.final_snapshot.jobs_completed);
  EXPECT_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_EQ(a.final_snapshot.accumulated_latency_s, b.final_snapshot.accumulated_latency_s);
  EXPECT_EQ(a.final_snapshot.average_power_watts, b.final_snapshot.average_power_watts);
  EXPECT_EQ(a.final_snapshot.jobs_in_system, b.final_snapshot.jobs_in_system);
  EXPECT_EQ(a.final_snapshot.reliability_penalty, b.final_snapshot.reliability_penalty);

  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].jobs_completed, b.series[i].jobs_completed);
    EXPECT_EQ(a.series[i].sim_time_s, b.series[i].sim_time_s);
    EXPECT_EQ(a.series[i].accumulated_latency_s, b.series[i].accumulated_latency_s);
    EXPECT_EQ(a.series[i].energy_kwh, b.series[i].energy_kwh);
    EXPECT_EQ(a.series[i].average_power_w, b.series[i].average_power_w);
  }

  EXPECT_EQ(a.trace_stats.num_jobs, b.trace_stats.num_jobs);
  EXPECT_EQ(a.trace_stats.mean_interarrival_s, b.trace_stats.mean_interarrival_s);
  EXPECT_EQ(a.trace_stats.mean_duration_s, b.trace_stats.mean_duration_s);
  EXPECT_EQ(a.trace_stats.mean_cpu, b.trace_stats.mean_cpu);
  EXPECT_EQ(a.trace_stats.total_cpu_seconds, b.trace_stats.total_cpu_seconds);
}

// ---- trace sources ---------------------------------------------------------

class CountingSource final : public TraceSource {
 public:
  explicit CountingSource(workload::GeneratorOptions opts) : inner_(opts) {}
  Trace produce() const override {
    ++productions;
    return inner_.produce();
  }
  std::string describe() const override { return "counting"; }
  mutable std::atomic<int> productions{0};

 private:
  SyntheticTraceSource inner_;
};

workload::GeneratorOptions tiny_trace(std::size_t jobs = 300) {
  workload::GeneratorOptions o;
  o.num_jobs = jobs;
  o.horizon_s = static_cast<double>(jobs) * 6.4;
  o.seed = 21;
  return o;
}

TEST(TraceSource, SyntheticProducesSortedStatsAndHorizon) {
  const SyntheticTraceSource source(tiny_trace());
  const Trace t = source.produce();
  ASSERT_EQ(t.jobs.size(), 300u);
  EXPECT_EQ(t.stats.num_jobs, 300u);
  EXPECT_DOUBLE_EQ(t.horizon_s, 300.0 * 6.4);
  for (std::size_t i = 1; i < t.jobs.size(); ++i) {
    EXPECT_GE(t.jobs[i].arrival, t.jobs[i - 1].arrival);
  }
}

TEST(TraceSource, CachedProducesInnerExactlyOnce) {
  auto counting = std::make_shared<CountingSource>(tiny_trace());
  const CachedTraceSource cached(counting);
  const Trace a = cached.produce();
  const Trace b = cached.produce();
  EXPECT_EQ(counting->productions.load(), 1);
  EXPECT_EQ(cached.inner_productions(), 1u);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].duration, b.jobs[i].duration);
  }
}

TEST(TraceSource, InMemoryInfersHorizonAndKeepsJobs) {
  const Trace base = SyntheticTraceSource(tiny_trace(50)).produce();
  const InMemoryTraceSource source(base.jobs);
  const Trace t = source.produce();
  EXPECT_EQ(t.jobs.size(), 50u);
  EXPECT_DOUBLE_EQ(t.horizon_s, infer_horizon_s(base.jobs));
  EXPECT_GT(t.horizon_s, 0.0);
}

TEST(TraceSource, FileRoundTripsThroughTraceIo) {
  const Trace base = SyntheticTraceSource(tiny_trace(40)).produce();
  const std::string path = testing::TempDir() + "runner_test_trace.csv";
  workload::write_trace_file(path, base.jobs);

  const FileTraceSource source(path);
  const Trace t = source.produce();
  ASSERT_EQ(t.jobs.size(), base.jobs.size());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_NEAR(t.jobs[i].arrival, base.jobs[i].arrival, 1e-6);
    EXPECT_NEAR(t.jobs[i].duration, base.jobs[i].duration, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(TraceSource, ScenarioRunsOnFileTrace) {
  const Trace base = SyntheticTraceSource(tiny_trace(120)).produce();
  const std::string path = testing::TempDir() + "runner_test_scenario_trace.csv";
  workload::write_trace_file(path, base.jobs);

  Scenario s = ScenarioRegistry::builtin().make("tiny/round-robin", 120);
  s.name = "file-backed";
  s.trace = make_cached(std::make_shared<FileTraceSource>(path));
  const ExperimentResult r = run_scenario(s);
  EXPECT_EQ(r.final_snapshot.jobs_completed, 120u);
  EXPECT_EQ(r.trace_stats.num_jobs, 120u);
  std::remove(path.c_str());
}

// ---- scenarios and the registry --------------------------------------------

TEST(Scenario, SeedDerivesAllStochasticStreams) {
  Scenario s = ScenarioRegistry::builtin().make("tiny/hierarchical", 200);
  s.seed = 99;
  const ExperimentConfig cfg = s.materialized();
  EXPECT_NE(cfg.trace.seed, s.config.trace.seed);
  EXPECT_NE(cfg.drl.seed, s.config.drl.seed);
  EXPECT_NE(cfg.local.seed, s.config.local.seed);
  // Deterministic: materializing twice gives the same derived seeds.
  const ExperimentConfig cfg2 = s.materialized();
  EXPECT_EQ(cfg.trace.seed, cfg2.trace.seed);
  EXPECT_EQ(cfg.drl.seed, cfg2.drl.seed);
  EXPECT_EQ(cfg.local.seed, cfg2.local.seed);
}

TEST(Scenario, ZeroSeedKeepsConfigSeeds) {
  Scenario s = ScenarioRegistry::builtin().make("tiny/round-robin", 200);
  const ExperimentConfig cfg = s.materialized();
  EXPECT_EQ(cfg.trace.seed, s.config.trace.seed);
}

TEST(ScenarioRegistry, BuiltinCoversThePaperGrid) {
  const auto& r = ScenarioRegistry::builtin();
  EXPECT_TRUE(r.contains("fig8/hierarchical"));
  EXPECT_TRUE(r.contains("fig9/round-robin"));
  EXPECT_TRUE(r.contains("table1/m30/drl-only"));
  EXPECT_TRUE(r.contains("table1/m40/hierarchical"));
  EXPECT_TRUE(r.contains("tiny/first-fit-packing"));
  EXPECT_FALSE(r.contains("fig11/uninvented"));
  EXPECT_GE(r.names().size(), 18u);
}

TEST(ScenarioRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    ScenarioRegistry::builtin().make("nope/nothing", 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope/nothing"), std::string::npos);
    EXPECT_NE(msg.find("fig8/"), std::string::npos);
  }
}

TEST(ScenarioRegistry, MakeGroupSharesOneTraceSource) {
  const auto group = ScenarioRegistry::builtin().make_group("fig8/", 500);
  ASSERT_EQ(group.size(), 3u);
  ASSERT_NE(group[0].trace, nullptr);
  EXPECT_EQ(group[0].trace.get(), group[1].trace.get());
  EXPECT_EQ(group[0].trace.get(), group[2].trace.get());
  EXPECT_EQ(group[0].name, "fig8/round-robin");
  EXPECT_EQ(group[2].config.num_servers, 30u);
}

TEST(ScenarioRegistry, MakeGroupKeepsDistinctTracesApart) {
  // table1 spans M=30 and M=40 — same generator options, so ONE trace is
  // correct across both cluster sizes (the paper runs both sizes on the
  // same workload segment). The -faulty rider perturbs servers, not the
  // workload, so it shares that trace too.
  const auto group = ScenarioRegistry::builtin().make_group("table1/", 400);
  ASSERT_EQ(group.size(), 7u);
  EXPECT_EQ(group[0].trace.get(), group[5].trace.get());
  EXPECT_EQ(group[0].trace.get(), group[6].trace.get());
  EXPECT_EQ(group[6].name, "table1/m30/hierarchical-faulty");

  // fig8 (M=30) and fig9 (M=40) share generator options too, but a tiny
  // scenario with a different trace scale must get its own source.
  std::vector<Scenario> mixed = {ScenarioRegistry::builtin().make("fig8/round-robin", 400),
                                 ScenarioRegistry::builtin().make("tiny/round-robin", 300)};
  share_synthetic_traces(mixed);
  EXPECT_NE(mixed[0].trace.get(), mixed[1].trace.get());
}

TEST(Scenario, ComparisonScenariosShareOneCachedSource) {
  ExperimentConfig base;
  base.num_servers = 6;
  base.num_groups = 2;
  base.trace = tiny_trace();
  const auto scenarios = comparison_scenarios(
      base, {SystemKind::kRoundRobin, SystemKind::kLeastLoaded}, "cmp/");
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].trace.get(), scenarios[1].trace.get());
  EXPECT_EQ(scenarios[0].name, "cmp/round-robin");
  EXPECT_EQ(scenarios[1].config.system, SystemKind::kLeastLoaded);
}

// ---- validation fails fast with the scenario name --------------------------

TEST(Runner, ValidationNamesTheBadScenarioBeforeAnythingRuns) {
  std::vector<Scenario> batch = ScenarioRegistry::builtin().make_group("tiny/", 200);
  Scenario bad = ScenarioRegistry::builtin().make("tiny/hierarchical", 200);
  bad.name = "bad-cell";
  bad.config.num_groups = 5;  // does not divide 6 servers
  batch.insert(batch.begin() + 2, bad);

  SerialRunner serial;
  ParallelRunner parallel(4);
  for (Runner* runner : {static_cast<Runner*>(&serial), static_cast<Runner*>(&parallel)}) {
    try {
      runner->run(batch);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("bad-cell"), std::string::npos);
      EXPECT_NE(msg.find("num_groups"), std::string::npos);
    }
  }
}

// ---- observers -------------------------------------------------------------

class CollectingObserver final : public RunObserver {
 public:
  void on_checkpoint(const Scenario& scenario, const CheckpointRow& row) override {
    checkpoints[scenario.name].push_back(row);
  }
  void on_complete(const Scenario& scenario, const ExperimentResult& result) override {
    completed.push_back(scenario.name);
    jobs_completed[scenario.name] = result.final_snapshot.jobs_completed;
  }

  std::map<std::string, std::vector<CheckpointRow>> checkpoints;
  std::vector<std::string> completed;
  std::map<std::string, std::size_t> jobs_completed;
};

TEST(Runner, ObserverStreamsCheckpointsAndCompletions) {
  const auto batch = ScenarioRegistry::builtin().make_group("tiny/", 300);
  CollectingObserver obs;
  const auto results = ParallelRunner(4).run(batch, &obs);

  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(obs.completed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Streamed checkpoints match the accumulated series exactly.
    const auto& streamed = obs.checkpoints[batch[i].name];
    ASSERT_EQ(streamed.size(), results[i].series.size());
    for (std::size_t k = 0; k < streamed.size(); ++k) {
      EXPECT_EQ(streamed[k].jobs_completed, results[i].series[k].jobs_completed);
      EXPECT_EQ(streamed[k].energy_kwh, results[i].series[k].energy_kwh);
    }
    EXPECT_EQ(obs.jobs_completed[batch[i].name], 300u);
  }
}

TEST(Runner, CsvObserverWritesHeaderAndOneRowPerCheckpoint) {
  Scenario s = ScenarioRegistry::builtin().make("tiny/round-robin", 300);
  std::ostringstream out;
  CsvCheckpointObserver csv(out);
  const auto results = SerialRunner().run({s}, &csv);

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "scenario,jobs,sim_time_s,acc_latency_s,energy_kwh,avg_power_w");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("tiny/round-robin,", 0), 0u);
    ++rows;
  }
  EXPECT_EQ(rows, results[0].series.size());
}

// ---- the headline property: parallel == serial, bit for bit ----------------

TEST(Runner, ParallelMatchesSerialBitForBitOnTheTinyGrid) {
  // >= 6 scenarios spanning all six systems, sharing one cached trace —
  // plus two seed-replicated hierarchical cells so scenario seeding is
  // covered too.
  std::vector<Scenario> batch = ScenarioRegistry::builtin().make_group("tiny/", 300);
  Scenario rep1 = ScenarioRegistry::builtin().make("tiny/hierarchical", 300);
  rep1.name = "tiny/hierarchical#seed1";
  rep1.seed = 1001;
  Scenario rep2 = rep1;
  rep2.name = "tiny/hierarchical#seed2";
  rep2.seed = 1002;
  batch.push_back(rep1);
  batch.push_back(rep2);
  ASSERT_GE(batch.size(), 6u);

  const auto serial = SerialRunner().run(batch);
  const auto parallel4 = ParallelRunner(4).run(batch);
  ASSERT_EQ(serial.size(), batch.size());
  ASSERT_EQ(parallel4.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i].name);
    expect_identical(serial[i], parallel4[i]);
  }

  // Seed-replicated cells really are different runs of the same system.
  const std::size_t h1 = batch.size() - 2, h2 = batch.size() - 1;
  EXPECT_NE(serial[h1].final_snapshot.energy_joules, serial[h2].final_snapshot.energy_joules);

  // And a second worker count completes the thread-count independence claim.
  const auto parallel2 = ParallelRunner(2).run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i].name);
    expect_identical(serial[i], parallel2[i]);
  }
}

TEST(Runner, ParallelMatchesSerialAtF32WithThreadedGemm) {
  // The f32 compute mode and the intra-GEMM thread pool compose with the
  // scenario-level ParallelRunner: results stay bit-identical to a serial
  // run at the same precision (threaded GEMM never reorders a reduction).
  std::vector<Scenario> batch;
  for (const char* name : {"tiny/hierarchical", "tiny/drl-only"}) {
    Scenario s = ScenarioRegistry::builtin().make(name, 250);
    s.name = std::string(name) + "#f32";
    s.config.precision = nn::Precision::kF32;
    s.config.gemm_threads = 2;
    batch.push_back(std::move(s));
  }
  share_synthetic_traces(batch);

  const auto serial = SerialRunner().run(batch);
  const auto parallel = ParallelRunner(2).run(batch);
  ASSERT_EQ(serial.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i].name);
    expect_identical(serial[i], parallel[i]);
    EXPECT_GT(serial[i].final_snapshot.jobs_completed, 0u);
  }
  nn::set_gemm_threads(1);
}

TEST(Runner, EmptyBatchAndOversizedPoolAreFine) {
  EXPECT_TRUE(ParallelRunner(8).run({}).empty());
  const auto one = ParallelRunner(8).run({ScenarioRegistry::builtin().make("tiny/least-loaded", 200)});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].final_snapshot.jobs_completed, 200u);
}

TEST(Runner, DefaultWorkerCountUsesHardware) {
  EXPECT_GE(ParallelRunner().num_workers(), 1u);
  EXPECT_EQ(ParallelRunner(3).num_workers(), 3u);
}

}  // namespace
}  // namespace hcrl::core
