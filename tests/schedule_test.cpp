#include "src/rl/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::rl {
namespace {

TEST(EpsilonSchedule, ConstantHoldsValue) {
  const auto s = EpsilonSchedule::constant(0.3);
  EXPECT_DOUBLE_EQ(s.value(0), 0.3);
  EXPECT_DOUBLE_EQ(s.value(1000000), 0.3);
}

TEST(EpsilonSchedule, LinearInterpolatesAndClamps) {
  const auto s = EpsilonSchedule::linear(1.0, 0.0, 100);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_DOUBLE_EQ(s.value(50), 0.5);
  EXPECT_DOUBLE_EQ(s.value(100), 0.0);
  EXPECT_DOUBLE_EQ(s.value(100000), 0.0);
}

TEST(EpsilonSchedule, ExponentialHalfLife) {
  const auto s = EpsilonSchedule::exponential(1.0, 0.0, 10);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_NEAR(s.value(10), 0.5, 1e-12);
  EXPECT_NEAR(s.value(20), 0.25, 1e-12);
}

TEST(EpsilonSchedule, ExponentialApproachesEnd) {
  const auto s = EpsilonSchedule::exponential(0.8, 0.05, 100);
  EXPECT_NEAR(s.value(10000), 0.05, 1e-6);
}

TEST(EpsilonSchedule, InvalidArgumentsThrow) {
  EXPECT_THROW(EpsilonSchedule::constant(-0.1), std::invalid_argument);
  EXPECT_THROW(EpsilonSchedule::constant(1.1), std::invalid_argument);
  EXPECT_THROW(EpsilonSchedule::linear(0.5, 0.1, 0), std::invalid_argument);
  EXPECT_THROW(EpsilonSchedule::linear(2.0, 0.1, 10), std::invalid_argument);
  EXPECT_THROW(EpsilonSchedule::exponential(0.5, -0.1, 10), std::invalid_argument);
}

TEST(EpsilonSchedule, ValuesAlwaysWithinEndpoints) {
  const auto lin = EpsilonSchedule::linear(0.9, 0.1, 500);
  const auto exp = EpsilonSchedule::exponential(0.9, 0.1, 500);
  for (std::int64_t t = 0; t <= 5000; t += 37) {
    for (const auto* s : {&lin, &exp}) {
      const double v = s->value(t);
      EXPECT_GE(v, 0.1 - 1e-12);
      EXPECT_LE(v, 0.9 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace hcrl::rl
