#include "src/nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/common/rng.hpp"
#include "src/nn/init.hpp"
#include "src/nn/network.hpp"

namespace hcrl::nn {
namespace {

TEST(Serialize, RoundTripRestoresExactValues) {
  common::Rng rng(1);
  Network a;
  a.add_dense(3, 4, Activation::kElu, rng);
  a.add_dense(4, 2, Activation::kIdentity, rng);

  std::stringstream buf;
  save_params(buf, a.params());

  Network b;
  b.add_dense(3, 4, Activation::kElu, rng);
  b.add_dense(4, 2, Activation::kIdentity, rng);
  load_params(buf, b.params());

  const Vec x = {0.3, -0.2, 0.8};
  const Vec ya = a.predict(x);
  const Vec yb = b.predict(x);
  ASSERT_EQ(ya.size(), yb.size());
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buf("not-the-magic\n3\n1\n2\n3\n");
  common::Rng rng(2);
  Network net;
  net.add_dense(1, 1, Activation::kIdentity, rng);
  EXPECT_THROW(load_params(buf, net.params()), std::invalid_argument);
}

TEST(Serialize, SizeMismatchRejected) {
  common::Rng rng(3);
  Network small, big;
  small.add_dense(1, 1, Activation::kIdentity, rng);
  big.add_dense(2, 2, Activation::kIdentity, rng);
  std::stringstream buf;
  save_params(buf, small.params());
  EXPECT_THROW(load_params(buf, big.params()), std::invalid_argument);
}

TEST(Serialize, TruncatedFileRejected) {
  common::Rng rng(4);
  Network net;
  net.add_dense(2, 2, Activation::kIdentity, rng);
  std::stringstream buf;
  save_params(buf, net.params());
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_params(truncated, net.params()), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip) {
  common::Rng rng(5);
  Network net;
  net.add_dense(2, 3, Activation::kTanh, rng);
  const std::string path = testing::TempDir() + "/hcrl_params_test.txt";
  save_params_file(path, net.params());

  Network loaded;
  loaded.add_dense(2, 3, Activation::kTanh, rng);
  load_params_file(path, loaded.params());
  const Vec x = {1.0, -1.0};
  const Vec ya = net.predict(x);
  const Vec yb = loaded.predict(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

TEST(Serialize, MissingFileThrows) {
  common::Rng rng(6);
  Network net;
  net.add_dense(1, 1, Activation::kIdentity, rng);
  EXPECT_THROW(load_params_file("/no/such/file", net.params()), std::runtime_error);
}

}  // namespace
}  // namespace hcrl::nn
