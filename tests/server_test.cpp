#include "src/sim/server.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/policies.hpp"

namespace hcrl::sim {
namespace {

Job make_job(JobId id, Time arrival, Time duration, double cpu) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = ResourceVector{cpu, cpu / 2.0, 0.01};
  return j;
}

ServerConfig test_config(bool asleep = true) {
  ServerConfig cfg;
  cfg.num_resources = 3;
  cfg.t_on = 30.0;
  cfg.t_off = 30.0;
  cfg.start_asleep = asleep;
  return cfg;
}

/// Drains the event queue for a single server under test, dispatching each
/// event to the right handler in time order. Returns the last event time.
Time drain(Server& server, EventQueue& queue, PowerPolicy& policy, Time until = 1e18) {
  Time now = 0.0;
  while (!queue.empty() && queue.top().time <= until) {
    const Event e = queue.pop();
    now = e.time;
    switch (e.type) {
      case EventType::kJobFinish: server.handle_job_finish(e.job, now, queue, policy); break;
      case EventType::kWakeComplete: server.handle_wake_complete(now, queue, policy); break;
      case EventType::kSleepComplete: server.handle_sleep_complete(now, queue, policy); break;
      case EventType::kIdleTimeout:
        server.handle_idle_timeout(e.generation, now, queue, policy);
        break;
      case EventType::kJobArrival: break;  // not used in single-server tests
      case EventType::kServerCrash:
      case EventType::kServerRecover:
      case EventType::kSpotEvict:
        break;  // fault events are injected by the cluster engines, not servers
    }
  }
  return now;
}

TEST(Server, StartsAsleepWithZeroPower) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(), &metrics);
  EXPECT_EQ(s.power_state(), PowerState::kSleep);
  EXPECT_DOUBLE_EQ(s.power_watts(), 0.0);
  EXPECT_FALSE(s.is_on());
}

TEST(Server, StartsIdleWhenConfigured) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(/*asleep=*/false), &metrics);
  EXPECT_EQ(s.power_state(), PowerState::kIdle);
  EXPECT_DOUBLE_EQ(s.power_watts(), 87.0);
}

TEST(Server, WakeDelayAddsToJobLatency) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(), &metrics);
  EventQueue q;
  AlwaysOnPolicy policy;

  s.handle_arrival(make_job(1, 100.0, 60.0, 0.5), 100.0, q, policy);
  EXPECT_EQ(s.power_state(), PowerState::kWaking);
  EXPECT_DOUBLE_EQ(s.power_watts(), 145.0);  // transition power

  drain(s, q, policy);
  ASSERT_EQ(metrics.job_records().size(), 1u);
  const JobRecord& r = metrics.job_records()[0];
  EXPECT_DOUBLE_EQ(r.start, 130.0);    // arrival + Ton
  EXPECT_DOUBLE_EQ(r.finish, 190.0);   // start + duration
  EXPECT_DOUBLE_EQ(r.latency(), 90.0); // wake (30) + duration (60)
}

TEST(Server, FcfsHeadOfLineBlocking) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(/*asleep=*/false), &metrics);
  EventQueue q;
  AlwaysOnPolicy policy;

  // Job 1 occupies 0.7 CPU for 100 s; job 2 (0.5) must wait; job 3 (0.2)
  // arrives later but FCFS forbids it to overtake job 2.
  s.handle_arrival(make_job(1, 0.0, 100.0, 0.7), 0.0, q, policy);
  s.handle_arrival(make_job(2, 1.0, 50.0, 0.5), 1.0, q, policy);
  s.handle_arrival(make_job(3, 2.0, 10.0, 0.2), 2.0, q, policy);
  EXPECT_EQ(s.running_count(), 1u);
  EXPECT_EQ(s.queue_length(), 2u);

  drain(s, q, policy);
  ASSERT_EQ(metrics.job_records().size(), 3u);
  // Jobs 2 and 3 both start when job 1 finishes at t=100.
  for (const auto& r : metrics.job_records()) {
    if (r.id == 2) { EXPECT_DOUBLE_EQ(r.start, 100.0); }
    if (r.id == 3) { EXPECT_DOUBLE_EQ(r.start, 100.0); }  // starts alongside job 2
  }
}

TEST(Server, ParallelExecutionWhenResourcesFit) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  AlwaysOnPolicy policy;
  s.handle_arrival(make_job(1, 0.0, 100.0, 0.4), 0.0, q, policy);
  s.handle_arrival(make_job(2, 0.0, 100.0, 0.4), 0.0, q, policy);
  EXPECT_EQ(s.running_count(), 2u);
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_NEAR(s.utilization(0), 0.8, 1e-12);
}

TEST(Server, ImmediateSleepAfterLastJob) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  ImmediateSleepPolicy policy;
  s.handle_arrival(make_job(1, 0.0, 10.0, 0.3), 0.0, q, policy);
  drain(s, q, policy);
  EXPECT_EQ(s.power_state(), PowerState::kSleep);
  EXPECT_DOUBLE_EQ(s.power_watts(), 0.0);
}

TEST(Server, FixedTimeoutExpiresIntoSleep) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  FixedTimeoutPolicy policy(60.0);
  s.handle_arrival(make_job(1, 0.0, 10.0, 0.3), 0.0, q, policy);
  // Job finishes at 10; timeout fires at 70; sleep complete at 100.
  drain(s, q, policy, 69.0);
  EXPECT_EQ(s.power_state(), PowerState::kIdle);
  drain(s, q, policy, 71.0);
  EXPECT_EQ(s.power_state(), PowerState::kFallingAsleep);
  drain(s, q, policy);
  EXPECT_EQ(s.power_state(), PowerState::kSleep);
}

TEST(Server, ArrivalCancelsPendingTimeout) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  FixedTimeoutPolicy policy(60.0);
  s.handle_arrival(make_job(1, 0.0, 10.0, 0.3), 0.0, q, policy);
  drain(s, q, policy, 15.0);  // idle at t=10 with timeout pending at 70
  s.handle_arrival(make_job(2, 20.0, 10.0, 0.3), 20.0, q, policy);
  EXPECT_EQ(s.power_state(), PowerState::kActive);
  // The stale timeout at t=70 must be ignored (job 2 finishes at 30 -> new
  // timeout at 90 -> sleep at 90+30).
  drain(s, q, policy, 75.0);
  EXPECT_EQ(s.power_state(), PowerState::kIdle);
  drain(s, q, policy);
  EXPECT_EQ(s.power_state(), PowerState::kSleep);
}

TEST(Server, ArrivalDuringFallingAsleepWaitsFullCycle) {
  // Fig. 4(a): job arrives during Toff; the server must complete the
  // power-down and then wake, so the job waits (Toff remainder) + Ton.
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  ImmediateSleepPolicy policy;
  s.handle_arrival(make_job(1, 0.0, 10.0, 0.3), 0.0, q, policy);
  drain(s, q, policy, 15.0);  // finished at 10, falling asleep until 40
  EXPECT_EQ(s.power_state(), PowerState::kFallingAsleep);
  s.handle_arrival(make_job(2, 20.0, 10.0, 0.3), 20.0, q, policy);
  EXPECT_EQ(s.power_state(), PowerState::kFallingAsleep);  // cannot abort
  drain(s, q, policy);
  ASSERT_EQ(metrics.job_records().size(), 2u);
  const JobRecord& r2 = metrics.job_records()[1];
  EXPECT_DOUBLE_EQ(r2.start, 70.0);  // 40 (sleep done) + 30 (wake)
}

TEST(Server, PowerAccountingForScriptedScenario) {
  // Idle server runs one job (0.5 CPU, 100 s), then sleeps immediately.
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  ImmediateSleepPolicy policy;
  const PowerModel pm;

  s.handle_arrival(make_job(1, 50.0, 100.0, 0.5), 50.0, q, policy);
  drain(s, q, policy);
  // Segments: [0,50) idle 87 W; [50,150) P(0.5); [150,180) transition 145 W;
  // then sleep 0 W.
  const double expected =
      50.0 * 87.0 + 100.0 * pm.active_power(0.5) + 30.0 * 145.0;
  EXPECT_NEAR(s.energy_joules(200.0), expected, 1e-9);
  EXPECT_NEAR(metrics.energy_joules(200.0), expected, 1e-9);
}

TEST(Server, QueueIntegralTracksWaitingJobs) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  AlwaysOnPolicy policy;
  s.handle_arrival(make_job(1, 0.0, 100.0, 0.8), 0.0, q, policy);
  s.handle_arrival(make_job(2, 10.0, 10.0, 0.8), 10.0, q, policy);  // waits 90 s
  drain(s, q, policy);
  EXPECT_NEAR(s.queue_integral(110.0), 90.0, 1e-9);
}

TEST(Server, HotspotPenaltyFiresAboveThreshold) {
  ClusterMetrics metrics(1);
  ServerConfig cfg = test_config(false);
  cfg.hotspot_threshold = 0.8;
  Server s(0, cfg, &metrics);
  EventQueue q;
  AlwaysOnPolicy policy;
  s.handle_arrival(make_job(1, 0.0, 10.0, 0.9), 0.0, q, policy);
  // Penalty rate = (0.9 - 0.8)^2 = 0.01 for 10 s.
  drain(s, q, policy);
  EXPECT_NEAR(metrics.reliability_integral(10.0), 0.1, 1e-9);
}

TEST(Server, FinishForUnknownJobThrows) {
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  AlwaysOnPolicy policy;
  EXPECT_THROW(s.handle_job_finish(999, 1.0, q, policy), std::logic_error);
}

TEST(Server, NegativeTimeoutFromPolicyThrows) {
  class BadPolicy final : public PowerPolicy {
   public:
    double on_idle(const Server&, Time) override { return -1.0; }
    std::string name() const override { return "bad"; }
  };
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  BadPolicy policy;
  s.handle_arrival(make_job(1, 0.0, 10.0, 0.3), 0.0, q, policy);
  const Event finish = q.pop();
  EXPECT_THROW(s.handle_job_finish(finish.job, finish.time, q, policy), std::invalid_argument);
}

TEST(Server, LastArrivalTimeVisibleToPolicyBeforeUpdate) {
  // The policy's on_arrival hook must see the *previous* arrival time so it
  // can compute inter-arrival gaps.
  class GapRecorder final : public PowerPolicy {
   public:
    double on_idle(const Server&, Time) override { return kNeverSleep; }
    void on_arrival(const Server& server, const Job&, Time now) override {
      if (server.last_arrival_time() >= 0.0) last_gap = now - server.last_arrival_time();
    }
    std::string name() const override { return "gap-recorder"; }
    double last_gap = -1.0;
  };
  ClusterMetrics metrics(1);
  Server s(0, test_config(false), &metrics);
  EventQueue q;
  GapRecorder policy;
  s.handle_arrival(make_job(1, 10.0, 5.0, 0.1), 10.0, q, policy);
  EXPECT_DOUBLE_EQ(policy.last_gap, -1.0);  // first arrival: no gap yet
  s.handle_arrival(make_job(2, 25.0, 5.0, 0.1), 25.0, q, policy);
  EXPECT_DOUBLE_EQ(policy.last_gap, 15.0);
  EXPECT_EQ(s.total_arrivals(), 2u);
}

TEST(Server, ConfigValidation) {
  ServerConfig cfg = test_config();
  cfg.num_resources = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = test_config();
  cfg.t_on = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = test_config();
  cfg.hotspot_threshold = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Server, PowerStateNames) {
  EXPECT_STREQ(to_string(PowerState::kSleep), "sleep");
  EXPECT_STREQ(to_string(PowerState::kWaking), "waking");
  EXPECT_STREQ(to_string(PowerState::kActive), "active");
  EXPECT_STREQ(to_string(PowerState::kIdle), "idle");
  EXPECT_STREQ(to_string(PowerState::kFallingAsleep), "falling-asleep");
}

}  // namespace
}  // namespace hcrl::sim
