// The sharded event-loop engine (src/sim/sharded_cluster.hpp):
//  - shards=1 lockstep is bit-identical to the serial Cluster through the
//    full driver (snapshot + checkpoint series), at f64 and f32;
//  - any fixed shard count is bit-reproducible run-to-run;
//  - the threaded engine (pre-routed and window-barrier modes) matches
//    single-threaded lockstep exactly;
//  - mode/safety guard rails throw instead of silently degrading.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/nn/precision.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/sharded_cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl {
namespace {

using core::ExperimentResult;
using core::Scenario;
using core::SystemKind;

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.servers_on_at_end, b.servers_on_at_end);
  EXPECT_EQ(a.final_snapshot.now, b.final_snapshot.now);
  EXPECT_EQ(a.final_snapshot.jobs_arrived, b.final_snapshot.jobs_arrived);
  EXPECT_EQ(a.final_snapshot.jobs_completed, b.final_snapshot.jobs_completed);
  EXPECT_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_EQ(a.final_snapshot.accumulated_latency_s, b.final_snapshot.accumulated_latency_s);
  EXPECT_EQ(a.final_snapshot.average_power_watts, b.final_snapshot.average_power_watts);
  EXPECT_EQ(a.final_snapshot.jobs_in_system, b.final_snapshot.jobs_in_system);
  EXPECT_EQ(a.final_snapshot.reliability_penalty, b.final_snapshot.reliability_penalty);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].jobs_completed, b.series[i].jobs_completed);
    EXPECT_EQ(a.series[i].sim_time_s, b.series[i].sim_time_s);
    EXPECT_EQ(a.series[i].accumulated_latency_s, b.series[i].accumulated_latency_s);
    EXPECT_EQ(a.series[i].energy_kwh, b.series[i].energy_kwh);
    EXPECT_EQ(a.series[i].average_power_w, b.series[i].average_power_w);
  }
}

Scenario tiny(SystemKind kind, std::size_t shards, nn::Precision precision) {
  Scenario s = core::ScenarioRegistry::builtin().make("tiny/" + core::to_string(kind), 400);
  s.config.shards = shards;
  s.config.precision = precision;
  s.config.finalize();
  return s;
}

void expect_shards1_matches_serial(SystemKind kind, nn::Precision precision) {
  const ExperimentResult serial = core::run_scenario(tiny(kind, 0, precision));
  const ExperimentResult sharded = core::run_scenario(tiny(kind, 1, precision));
  expect_identical(serial, sharded);
  EXPECT_FALSE(serial.series.empty());  // the comparison must cover a real series
}

// ---- shards=1 == serial, through the full driver ---------------------------

TEST(ShardedCluster, OneShardMatchesSerialRoundRobinF64) {
  expect_shards1_matches_serial(SystemKind::kRoundRobin, nn::Precision::kF64);
}

TEST(ShardedCluster, OneShardMatchesSerialLeastLoadedF64) {
  expect_shards1_matches_serial(SystemKind::kLeastLoaded, nn::Precision::kF64);
}

// The hierarchical system exercises the staging RL local tier + decision
// service: the lockstep engine must reproduce the epoch-flush barrier and
// reserve_seq tie-breaking exactly.
TEST(ShardedCluster, OneShardMatchesSerialHierarchicalF64) {
  expect_shards1_matches_serial(SystemKind::kHierarchical, nn::Precision::kF64);
}

TEST(ShardedCluster, OneShardMatchesSerialHierarchicalF32) {
  expect_shards1_matches_serial(SystemKind::kHierarchical, nn::Precision::kF32);
}

TEST(ShardedCluster, OneShardMatchesSerialRoundRobinF32) {
  expect_shards1_matches_serial(SystemKind::kRoundRobin, nn::Precision::kF32);
}

// ---- fixed shard count: bit-reproducible run-to-run ------------------------

TEST(ShardedCluster, FixedShardCountIsReproducible) {
  for (const std::size_t shards : {2u, 4u}) {
    for (const SystemKind kind : {SystemKind::kRoundRobin, SystemKind::kHierarchical}) {
      const ExperimentResult first = core::run_scenario(tiny(kind, shards, nn::Precision::kF64));
      const ExperimentResult second = core::run_scenario(tiny(kind, shards, nn::Precision::kF64));
      expect_identical(first, second);
      EXPECT_EQ(first.final_snapshot.jobs_completed, 400u);
    }
  }
}

// ---- threaded engine == lockstep -------------------------------------------

std::vector<sim::Job> tiny_trace(std::size_t jobs) {
  workload::GeneratorOptions o;
  o.num_jobs = jobs;
  o.horizon_s = static_cast<double>(jobs) * 2.1;
  o.seed = 33;
  return workload::GoogleTraceGenerator(o).generate();
}

sim::ShardedClusterConfig sharded_config(std::size_t servers, std::size_t shards,
                                         sim::ShardedClusterConfig::Execution mode) {
  sim::ShardedClusterConfig cfg;
  cfg.cluster.num_servers = servers;
  cfg.cluster.server.t_on = 30.0;
  cfg.cluster.server.t_off = 10.0;
  cfg.num_shards = shards;
  cfg.execution = mode;
  return cfg;
}

void expect_snapshots_equal(const sim::MetricsSnapshot& a, const sim::MetricsSnapshot& b) {
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.accumulated_latency_s, b.accumulated_latency_s);
  EXPECT_EQ(a.jobs_in_system, b.jobs_in_system);
  EXPECT_EQ(a.reliability_penalty, b.reliability_penalty);
}

// Trace-only allocator + stateless power policy: the parallel engine
// pre-routes every arrival and runs the shards with zero barriers. Must be
// bitwise equal to lockstep — and, transitively, to the serial engine.
TEST(ShardedCluster, ParallelPreRoutedMatchesLockstep) {
  for (const std::size_t shards : {1u, 2u, 4u}) {
    sim::RoundRobinAllocator alloc_a;
    sim::FixedTimeoutPolicy power_a(30.0);
    sim::ShardedCluster lockstep(
        sharded_config(8, shards, sim::ShardedClusterConfig::Execution::kLockstep), alloc_a,
        power_a);
    lockstep.load_jobs(tiny_trace(600));
    lockstep.run();

    sim::RoundRobinAllocator alloc_b;
    sim::FixedTimeoutPolicy power_b(30.0);
    sim::ShardedCluster parallel(
        sharded_config(8, shards, sim::ShardedClusterConfig::Execution::kParallel), alloc_b,
        power_b);
    parallel.load_jobs(tiny_trace(600));
    parallel.run();

    expect_snapshots_equal(lockstep.snapshot(), parallel.snapshot());
    EXPECT_EQ(lockstep.servers_on(), parallel.servers_on());
    EXPECT_EQ(lockstep.mean_cpu_utilization(), parallel.mean_cpu_utilization());
  }
}

// Global-state allocator forces window barriers: every shard quiesces below
// the next arrival before the router reads cluster-wide state.
TEST(ShardedCluster, ParallelWindowedMatchesLockstep) {
  for (const std::size_t shards : {2u, 3u}) {
    sim::LeastLoadedAllocator alloc_a;
    sim::ImmediateSleepPolicy power_a;
    sim::ShardedCluster lockstep(
        sharded_config(6, shards, sim::ShardedClusterConfig::Execution::kLockstep), alloc_a,
        power_a);
    lockstep.load_jobs(tiny_trace(400));
    lockstep.run();

    sim::LeastLoadedAllocator alloc_b;
    sim::ImmediateSleepPolicy power_b;
    sim::ShardedCluster parallel(
        sharded_config(6, shards, sim::ShardedClusterConfig::Execution::kParallel), alloc_b,
        power_b);
    parallel.load_jobs(tiny_trace(400));
    parallel.run();

    expect_snapshots_equal(lockstep.snapshot(), parallel.snapshot());
    EXPECT_EQ(lockstep.servers_on(), parallel.servers_on());
  }
}

// Lockstep sharded vs serial Cluster at the engine level: shards=1 is
// bitwise identical; higher shard counts process the identical event
// schedule (same counts, same end time, same on/off states) but accumulate
// the float metrics per shard, so the deterministic shard-order sums may
// differ from the serial single-accumulator order by rounding only.
TEST(ShardedCluster, LockstepMatchesSerialForTraceOnlyPolicies) {
  sim::RoundRobinAllocator alloc_serial;
  sim::FixedTimeoutPolicy power_serial(30.0);
  sim::ClusterConfig serial_cfg = sharded_config(8, 1, {}).cluster;
  sim::Cluster serial(serial_cfg, alloc_serial, power_serial);
  serial.load_jobs(tiny_trace(600));
  serial.run();
  const auto a = serial.snapshot();

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    sim::RoundRobinAllocator alloc;
    sim::FixedTimeoutPolicy power(30.0);
    sim::ShardedCluster sharded(
        sharded_config(8, shards, sim::ShardedClusterConfig::Execution::kLockstep), alloc, power);
    sharded.load_jobs(tiny_trace(600));
    sharded.run();
    const auto b = sharded.snapshot();
    if (shards == 1) {
      expect_snapshots_equal(a, b);
    } else {
      EXPECT_EQ(a.now, b.now);
      EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
      EXPECT_EQ(a.jobs_completed, b.jobs_completed);
      const double rel = 1e-12;
      EXPECT_NEAR(a.energy_joules, b.energy_joules, rel * a.energy_joules);
      EXPECT_NEAR(a.accumulated_latency_s, b.accumulated_latency_s,
                  rel * a.accumulated_latency_s);
      EXPECT_NEAR(a.reliability_penalty, b.reliability_penalty,
                  rel * std::max(1.0, a.reliability_penalty));
      EXPECT_EQ(a.jobs_in_system, b.jobs_in_system);
    }
    EXPECT_EQ(serial.servers_on(), sharded.servers_on());
  }
}

// ---- guard rails -----------------------------------------------------------

TEST(ShardedCluster, ParallelModeRejectsUnsafePowerPolicyAndStepping) {
  sim::RoundRobinAllocator alloc;

  class StagingProbe final : public sim::PowerPolicy {
   public:
    double on_idle(const sim::Server&, sim::Time) override { return sim::kNeverSleep; }
    std::string name() const override { return "staging-probe"; }
    // shard_parallel_safe() stays false (the default).
  } unsafe;
  EXPECT_THROW(sim::ShardedCluster(
                   sharded_config(4, 2, sim::ShardedClusterConfig::Execution::kParallel), alloc,
                   unsafe),
               std::invalid_argument);

  sim::FixedTimeoutPolicy safe(30.0);
  sim::ShardedCluster parallel(
      sharded_config(4, 2, sim::ShardedClusterConfig::Execution::kParallel), alloc, safe);
  EXPECT_THROW(parallel.step(), std::logic_error);
  EXPECT_THROW(parallel.run_until_completed(1), std::logic_error);
}

TEST(ShardedCluster, ConfigValidation) {
  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  EXPECT_THROW(sim::ShardedCluster(sharded_config(4, 0, {}), alloc, power),
               std::invalid_argument);
  EXPECT_THROW(sim::ShardedCluster(sharded_config(4, 5, {}), alloc, power),
               std::invalid_argument);
}

TEST(ShardedCluster, PartitionCoversAllServersContiguously) {
  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  sim::ShardedCluster c(sharded_config(10, 3, {}), alloc, power);
  ASSERT_EQ(c.num_shards(), 3u);
  std::size_t prev = 0;
  for (sim::ServerId i = 0; i < 10; ++i) {
    const std::size_t s = c.shard_of(i);
    EXPECT_GE(s, prev);  // contiguous, non-decreasing blocks
    prev = s;
  }
  EXPECT_EQ(c.shard_of(0), 0u);
  EXPECT_EQ(c.shard_of(9), 2u);
}

// ---- scale smoke -----------------------------------------------------------

// 10k servers through the threaded pre-routed engine. Kept small enough for
// the default suite; the >= 1M-event measurement lives in bench_micro
// (BM_ShardedEventThroughput) with cells tracked in BENCH_micro.json.
TEST(ShardedCluster, TenThousandServerSmoke) {
  const std::size_t jobs = std::getenv("HCRL_SLOW_TESTS") != nullptr ? 200000u : 20000u;
  workload::GeneratorOptions o;
  o.num_jobs = jobs;
  o.horizon_s = static_cast<double>(jobs) * 0.02;  // heavy aggregate arrival rate
  o.seed = 5;
  auto trace = workload::GoogleTraceGenerator(o).generate();

  sim::RoundRobinAllocator alloc;
  sim::FixedTimeoutPolicy power(30.0);
  sim::ShardedCluster cluster(
      sharded_config(10000, 4, sim::ShardedClusterConfig::Execution::kParallel), alloc, power);
  cluster.load_jobs(std::move(trace));
  cluster.run();

  const auto snap = cluster.snapshot();
  EXPECT_EQ(snap.jobs_arrived, jobs);
  EXPECT_EQ(snap.jobs_completed, jobs);
  EXPECT_GT(snap.energy_joules, 0.0);
}

}  // namespace
}  // namespace hcrl
