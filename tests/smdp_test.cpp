#include "src/rl/smdp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hcrl::rl {
namespace {

TEST(Smdp, DiscountBasics) {
  EXPECT_DOUBLE_EQ(smdp_discount(0.5, 0.0), 1.0);
  EXPECT_NEAR(smdp_discount(0.5, 2.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(smdp_discount(1.0, 100.0), 0.0, 1e-12);
}

TEST(Smdp, RewardWeightLimits) {
  // tau -> 0: weight -> 0 (no time to accumulate reward).
  EXPECT_DOUBLE_EQ(smdp_reward_weight(0.5, 0.0), 0.0);
  // tau -> inf: weight -> 1/beta (full discounted mass).
  EXPECT_NEAR(smdp_reward_weight(0.5, 1000.0), 2.0, 1e-9);
  // Small beta*tau: weight ~ tau (numerically stable via expm1).
  EXPECT_NEAR(smdp_reward_weight(1e-9, 1.0), 1.0, 1e-6);
}

TEST(Smdp, RewardWeightMatchesClosedForm) {
  for (double beta : {0.01, 0.1, 0.5, 2.0}) {
    for (double tau : {0.1, 1.0, 7.3, 42.0}) {
      EXPECT_NEAR(smdp_reward_weight(beta, tau), (1.0 - std::exp(-beta * tau)) / beta, 1e-12);
    }
  }
}

TEST(Smdp, TargetComposition) {
  // target = weight * r + discount * next.
  const double beta = 0.5, tau = 2.0, r = -3.0, next = 10.0;
  const double expected =
      (1.0 - std::exp(-1.0)) / 0.5 * r + std::exp(-1.0) * next;
  EXPECT_NEAR(smdp_target(r, tau, beta, next), expected, 1e-12);
}

TEST(Smdp, TargetDegeneratesToNextValueAtZeroTau) {
  EXPECT_DOUBLE_EQ(smdp_target(-100.0, 0.0, 0.5, 7.0), 7.0);
}

TEST(Smdp, TargetIgnoresNextValueAtLargeTau) {
  EXPECT_NEAR(smdp_target(-1.0, 1e6, 0.5, 1e9), -2.0, 1e-3);
}

TEST(Smdp, InvalidArgumentsThrow) {
  EXPECT_THROW(smdp_discount(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(smdp_discount(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(smdp_discount(0.5, -1.0), std::invalid_argument);
  EXPECT_THROW(smdp_reward_weight(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(smdp_reward_weight(0.5, -1.0), std::invalid_argument);
}

// Property sweep: the weight is increasing in tau and the discount
// decreasing; together they conserve: weight * beta + discount == 1.
class SmdpProperty : public testing::TestWithParam<double> {};

TEST_P(SmdpProperty, WeightAndDiscountAreComplementary) {
  const double beta = GetParam();
  double prev_weight = -1.0, prev_discount = 2.0;
  for (double tau : {0.0, 0.5, 1.0, 5.0, 20.0, 100.0}) {
    const double w = smdp_reward_weight(beta, tau);
    const double d = smdp_discount(beta, tau);
    EXPECT_NEAR(w * beta + d, 1.0, 1e-12);
    EXPECT_GE(w, prev_weight);
    EXPECT_LE(d, prev_discount);
    prev_weight = w;
    prev_discount = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, SmdpProperty, testing::Values(0.005, 0.05, 0.5, 1.0, 3.0));

}  // namespace
}  // namespace hcrl::rl
