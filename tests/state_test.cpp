#include "src/core/state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/sim/cluster.hpp"
#include "src/sim/policies.hpp"

namespace hcrl::core {
namespace {

StateEncoderOptions opts(std::size_t servers = 6, std::size_t groups = 2) {
  StateEncoderOptions o;
  o.num_servers = servers;
  o.num_groups = groups;
  o.num_resources = 3;
  return o;
}

sim::Job make_job(double cpu = 0.2, double duration = 600.0) {
  sim::Job j;
  j.id = 1;
  j.arrival = 0.0;
  j.duration = duration;
  j.demand = sim::ResourceVector{cpu, cpu, 0.05};
  return j;
}

TEST(StateEncoderOptions, Validation) {
  EXPECT_NO_THROW(opts().validate());
  auto o = opts(5, 2);  // 2 does not divide 5
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = opts(0, 1);
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = opts();
  o.num_resources = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = opts();
  o.duration_scale = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(StateEncoderOptions, DimensionArithmetic) {
  const auto o = opts(6, 2);
  EXPECT_EQ(o.group_size(), 3u);
  EXPECT_EQ(o.per_server_features(), 5u);  // 3 resources + availability + queue
  EXPECT_EQ(o.group_state_dim(), 15u);
  EXPECT_EQ(o.job_state_dim(), 4u);
  EXPECT_EQ(o.full_state_dim(), 2u * 15u + 4u);
}

TEST(StateEncoder, GroupIndexMapping) {
  const StateEncoder enc(opts(6, 2));
  EXPECT_EQ(enc.group_of(0), 0u);
  EXPECT_EQ(enc.group_of(2), 0u);
  EXPECT_EQ(enc.group_of(3), 1u);
  EXPECT_EQ(enc.index_in_group(4), 1u);
  EXPECT_EQ(enc.server_of(1, 2), 5u);
}

class StateEncoderWithCluster : public testing::Test {
 protected:
  StateEncoderWithCluster() : encoder_(opts(6, 2)) {
    sim::ClusterConfig cfg;
    cfg.num_servers = 6;
    cfg.server.start_asleep = true;
    cluster_ = std::make_unique<sim::Cluster>(cfg, alloc_, power_);
  }

  StateEncoder encoder_;
  sim::RoundRobinAllocator alloc_;
  sim::AlwaysOnPolicy power_;
  std::unique_ptr<sim::Cluster> cluster_;
};

TEST_F(StateEncoderWithCluster, SleepingClusterEncodesZeros) {
  const nn::Vec g = encoder_.group_state(*cluster_, 0);
  ASSERT_EQ(g.size(), 15u);
  for (double v : g) EXPECT_DOUBLE_EQ(v, 0.0);  // utilization 0, asleep, queue 0
}

TEST_F(StateEncoderWithCluster, JobStateEncodesDemandsAndDuration) {
  const nn::Vec j = encoder_.job_state(make_job(0.3, 7200.0));
  ASSERT_EQ(j.size(), 4u);
  EXPECT_DOUBLE_EQ(j[0], 0.3);
  EXPECT_DOUBLE_EQ(j[1], 0.3);
  EXPECT_DOUBLE_EQ(j[2], 0.05);
  EXPECT_NEAR(j[3], 1.0, 1e-9);  // duration at the scale cap -> 1
}

TEST_F(StateEncoderWithCluster, FullStateConcatenatesGroupsAndJob) {
  const nn::Vec s = encoder_.full_state(*cluster_, make_job());
  EXPECT_EQ(s.size(), encoder_.options().full_state_dim());
}

TEST_F(StateEncoderWithCluster, RunningJobShowsInUtilizationAndAvailability) {
  std::vector<sim::Job> jobs = {make_job(0.4, 1000.0)};
  jobs[0].arrival = 0.0;
  cluster_->load_jobs(jobs);
  // Process arrival + wake completion so the job actually starts on server 0.
  while (cluster_->metrics().jobs_completed() == 0 && cluster_->server(0).running_count() == 0) {
    cluster_->step();
  }
  const nn::Vec g = encoder_.group_state(*cluster_, 0);
  EXPECT_NEAR(g[0], 0.4, 1e-9);   // cpu of server 0
  EXPECT_DOUBLE_EQ(g[3], 1.0);    // availability: on
}

TEST_F(StateEncoderWithCluster, TransitioningServerEncodesHalfAvailability) {
  std::vector<sim::Job> jobs = {make_job(0.4, 1000.0)};
  cluster_->load_jobs(jobs);
  cluster_->step();  // arrival dispatched; server 0 starts waking
  ASSERT_EQ(cluster_->server(0).power_state(), sim::PowerState::kWaking);
  const nn::Vec g = encoder_.group_state(*cluster_, 0);
  EXPECT_DOUBLE_EQ(g[3], 0.5);
  // Queue feature: one queued job -> log1p(1)/log1p(50).
  EXPECT_NEAR(g[4], std::log1p(1.0) / std::log1p(50.0), 1e-12);
}

TEST_F(StateEncoderWithCluster, BadGroupOrClusterSizeThrows) {
  EXPECT_THROW(encoder_.group_state(*cluster_, 2), std::out_of_range);
  const StateEncoder wrong(opts(12, 2));
  EXPECT_THROW(wrong.group_state(*cluster_, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::core
