#include "src/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hcrl::common {
namespace {

TEST(Percentile, EmptyAndSingle) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(percentile(empty, 0.95), 0.0);
  std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.0);
}

TEST(Percentile, NearestRankOnKnownData) {
  // percentile() selects element floor(q * (n-1)) — the convention the
  // runner's latency_p95_s / latency_p99_s tail metrics are defined by.
  std::vector<double> xs = {9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 4.0);   // floor(0.5 * 9) = 4
  EXPECT_DOUBLE_EQ(percentile(xs, 0.95), 8.0);  // floor(0.95 * 9) = 8
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 7.0), 9.0);  // out-of-range q clamps
}

TEST(QuantileFromBins, RequiresMatchingShapes) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> bad = {1, 2};  // needs bounds.size() + 1
  EXPECT_THROW(quantile_from_bins(bad, bounds, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_from_bins(bad, {}, 0.5), std::invalid_argument);
}

TEST(QuantileFromBins, EmptyAndInterpolation) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> empty = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(quantile_from_bins(empty, bounds, 0.5), 0.0);

  const std::vector<std::uint64_t> bins = {0, 8, 0, 2};
  // p50: target 5 of 10 lands in [1,2) at fraction 5/8.
  EXPECT_DOUBLE_EQ(quantile_from_bins(bins, bounds, 0.5), 1.0 + 5.0 / 8.0);
  // p95 lands in the overflow bin, which collapses onto bounds.back().
  EXPECT_DOUBLE_EQ(quantile_from_bins(bins, bounds, 0.95), 4.0);
  // Underflow samples likewise collapse onto bounds.front().
  const std::vector<std::uint64_t> under = {4, 0, 0, 0};
  EXPECT_DOUBLE_EQ(quantile_from_bins(under, bounds, 0.5), 1.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  const std::vector<double> xs = {1.0, -2.0, 3.5, 0.25, 10.0, -7.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(TimeWeightedValue, ConstantSignalIntegral) {
  TimeWeightedValue v;
  v.set(0.0, 5.0);
  EXPECT_DOUBLE_EQ(v.integral(10.0), 50.0);
  EXPECT_DOUBLE_EQ(v.time_average(10.0), 5.0);
}

TEST(TimeWeightedValue, PiecewiseIntegralIsExact) {
  TimeWeightedValue v;
  v.set(0.0, 1.0);
  v.set(2.0, 3.0);   // [0,2) at 1 -> 2
  v.set(5.0, 0.0);   // [2,5) at 3 -> 9
  EXPECT_DOUBLE_EQ(v.integral(5.0), 11.0);
  EXPECT_DOUBLE_EQ(v.integral(8.0), 11.0);  // zero afterwards
  EXPECT_DOUBLE_EQ(v.time_average(8.0), 11.0 / 8.0);
}

TEST(TimeWeightedValue, NonZeroStartTime) {
  TimeWeightedValue v;
  v.set(10.0, 2.0);
  EXPECT_DOUBLE_EQ(v.integral(15.0), 10.0);
  EXPECT_DOUBLE_EQ(v.time_average(15.0), 2.0);
  EXPECT_DOUBLE_EQ(v.start_time(), 10.0);
}

TEST(TimeWeightedValue, RepeatedSetAtSameTime) {
  TimeWeightedValue v;
  v.set(0.0, 1.0);
  v.set(1.0, 2.0);
  v.set(1.0, 5.0);  // replaces the value with zero elapsed time
  EXPECT_DOUBLE_EQ(v.integral(2.0), 1.0 + 5.0);
}

TEST(TimeWeightedValue, ThrowsOnBackwardsTime) {
  TimeWeightedValue v;
  v.set(5.0, 1.0);
  EXPECT_THROW(v.set(4.0, 2.0), std::invalid_argument);
  EXPECT_THROW(v.integral(4.0), std::invalid_argument);
}

TEST(TimeWeightedValue, EmptyBehaviour) {
  TimeWeightedValue v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.integral(100.0), 0.0);
  EXPECT_DOUBLE_EQ(v.time_average(100.0), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
}

TEST(Histogram, QuantileOfEmptyThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.quantile(0.5), std::invalid_argument);
}

TEST(Ema, FirstSampleSeeds) {
  Ema e(0.5);
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ema, BlendsTowardNewValues) {
  Ema e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

}  // namespace
}  // namespace hcrl::common
