// Parameterized sweeps: properties that must hold across whole families of
// configurations, not just the defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/core/state.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl {
namespace {

// ---- generator marginals hold for every seed -------------------------------

class GeneratorSeedSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, MarginalsAndOrderingHold) {
  workload::GeneratorOptions o;
  o.num_jobs = 2000;
  o.horizon_s = 2000.0 * 6.4;
  o.seed = GetParam();
  const auto jobs = workload::GoogleTraceGenerator(o).generate();
  ASSERT_EQ(jobs.size(), 2000u);
  double prev = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.arrival, prev);
    prev = j.arrival;
    EXPECT_GE(j.duration, 60.0);
    EXPECT_LE(j.duration, 7200.0);
    EXPECT_NO_THROW(j.validate(3));
  }
  const auto stats = workload::compute_stats(jobs, o.horizon_s);
  EXPECT_GT(stats.mean_duration_s, 400.0);
  EXPECT_LT(stats.mean_duration_s, 1400.0);
  EXPECT_LT(stats.mean_cpu, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         testing::Values(1u, 2u, 3u, 10u, 100u, 1000u, 424242u));

// ---- training reduces loss for every activation ----------------------------

class ActivationSweep : public testing::TestWithParam<nn::Activation> {};

TEST_P(ActivationSweep, NetworkFitsLinearTarget) {
  common::Rng rng(5);
  nn::Network net;
  net.add_dense(2, 8, GetParam(), rng);
  net.add_dense(8, 1, nn::Activation::kIdentity, rng);
  nn::Adam opt(net.params(), nn::Adam::Options{.lr = 5e-3});

  auto target_fn = [](double a, double b) { return 0.4 * a - 0.3 * b + 0.1; };
  common::Rng data(6);
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 1500; ++i) {
    const double a = data.uniform(-1.0, 1.0), b = data.uniform(-1.0, 1.0);
    opt.zero_grad();
    const nn::Vec pred = net.forward({a, b});
    auto loss = nn::mse_loss(pred, {target_fn(a, b)});
    net.backward(loss.grad);
    opt.step();
    if (i < 50) first += loss.value;
    if (i >= 1450) last += loss.value;
  }
  EXPECT_LT(last, first * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Activations, ActivationSweep,
                         testing::Values(nn::Activation::kRelu, nn::Activation::kElu,
                                         nn::Activation::kTanh, nn::Activation::kSigmoid));

// ---- state encoder dimensions are consistent for many (M, K) --------------

class EncoderShapeSweep
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(EncoderShapeSweep, FullStateHasDeclaredDimension) {
  const auto [servers, groups] = GetParam();
  core::StateEncoderOptions o;
  o.num_servers = servers;
  o.num_groups = groups;
  const core::StateEncoder enc(o);

  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = servers;
  sim::Cluster cluster(cfg, alloc, power);

  sim::Job job;
  job.id = 1;
  job.duration = 100.0;
  job.demand = sim::ResourceVector{0.1, 0.1, 0.01};
  EXPECT_EQ(enc.full_state(cluster, job).size(), o.full_state_dim());
  // Group/server index maps are mutually inverse.
  for (std::size_t m = 0; m < servers; ++m) {
    EXPECT_EQ(enc.server_of(enc.group_of(m), enc.index_in_group(m)), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, EncoderShapeSweep,
                         testing::Values(std::make_tuple(4u, 2u), std::make_tuple(6u, 3u),
                                         std::make_tuple(30u, 3u), std::make_tuple(40u, 4u),
                                         std::make_tuple(60u, 2u), std::make_tuple(8u, 8u)));

// ---- every registered tiny scenario runs to completion via a Runner -------

class ScenarioSweep : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioSweep, BuiltinScenarioCompletesAllJobs) {
  const core::Scenario scenario =
      core::ScenarioRegistry::builtin().make(GetParam(), 300);
  core::SerialRunner runner;
  const auto results = runner.run({scenario});
  ASSERT_EQ(results.size(), 1u);
  const auto& s = results[0].final_snapshot;
  EXPECT_EQ(s.jobs_arrived, 300u);
  EXPECT_EQ(s.jobs_completed, 300u);
  EXPECT_GT(s.energy_joules, 0.0);
  EXPECT_GE(s.average_latency_s(), 60.0);  // >= the minimum job duration
  EXPECT_EQ(results[0].system,
            GetParam().substr(std::string("tiny/").size()));
}

INSTANTIATE_TEST_SUITE_P(TinySystems, ScenarioSweep,
                         testing::Values("tiny/round-robin", "tiny/drl-only",
                                         "tiny/hierarchical", "tiny/drl-fixed-timeout",
                                         "tiny/least-loaded", "tiny/first-fit-packing"));

// ---- energy monotonicity: always-on dominates every timeout policy --------

class TimeoutEnergySweep : public testing::TestWithParam<double> {};

TEST_P(TimeoutEnergySweep, AlwaysOnIsEnergyUpperBoundForSparseLoad) {
  workload::GeneratorOptions g;
  g.num_jobs = 60;
  g.horizon_s = 60.0 * 1800.0;  // very sparse: sleeping clearly pays
  g.seed = 3;
  auto jobs = workload::GoogleTraceGenerator(g).generate();

  auto energy_with = [&](sim::PowerPolicy& policy) {
    sim::RoundRobinAllocator alloc;
    sim::ClusterConfig cfg;
    cfg.num_servers = 5;
    cfg.server.start_asleep = false;
    sim::Cluster cluster(cfg, alloc, policy);
    cluster.load_jobs(jobs);
    cluster.run();
    return cluster.snapshot().energy_joules;
  };

  sim::AlwaysOnPolicy always_on;
  sim::FixedTimeoutPolicy fixed(GetParam());
  EXPECT_LT(energy_with(fixed), energy_with(always_on));
}

INSTANTIATE_TEST_SUITE_P(Timeouts, TimeoutEnergySweep,
                         testing::Values(0.0, 30.0, 60.0, 120.0, 300.0));

}  // namespace
}  // namespace hcrl
