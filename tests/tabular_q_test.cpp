#include "src/rl/tabular_q.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/rl/smdp.hpp"

namespace hcrl::rl {
namespace {

TabularQAgent::Options opts(double alpha = 0.5, double beta = 0.5) {
  TabularQAgent::Options o;
  o.learning_rate = alpha;
  o.beta = beta;
  o.epsilon = EpsilonSchedule::constant(0.0);
  return o;
}

TEST(TabularQ, ConstructionValidation) {
  EXPECT_THROW(TabularQAgent(0, 2, opts()), std::invalid_argument);
  EXPECT_THROW(TabularQAgent(2, 0, opts()), std::invalid_argument);
  auto bad_alpha = opts();
  bad_alpha.learning_rate = 0.0;
  EXPECT_THROW(TabularQAgent(2, 2, bad_alpha), std::invalid_argument);
  auto bad_beta = opts();
  bad_beta.beta = 0.0;
  EXPECT_THROW(TabularQAgent(2, 2, bad_beta), std::invalid_argument);
}

TEST(TabularQ, InitialQValue) {
  auto o = opts();
  o.initial_q = 2.5;
  TabularQAgent agent(2, 3, o);
  EXPECT_DOUBLE_EQ(agent.q(1, 2), 2.5);
  EXPECT_DOUBLE_EQ(agent.max_q(0), 2.5);
}

TEST(TabularQ, UpdateMatchesEqnTwo) {
  TabularQAgent agent(2, 2, opts(0.5, 0.5));
  // Prime Q(s'=1, *) so the bootstrap term is non-trivial.
  agent.update_with_value(1, 0, 0.0, 1e9, 4.0);  // long sojourn: Q -> ~0.5*(0*2) ...
  // Compute the exact expected update by hand for the main assertion:
  TabularQAgent fresh(2, 2, opts(0.5, 0.5));
  fresh.update(0, 1, -2.0, 3.0, 1);
  const double target = smdp_target(-2.0, 3.0, 0.5, 0.0);
  EXPECT_NEAR(fresh.q(0, 1), 0.5 * target, 1e-12);
}

TEST(TabularQ, UpdateWithValueUsesOverride) {
  TabularQAgent agent(1, 1, opts(1.0, 0.5));
  agent.update_with_value(0, 0, 0.0, 2.0, -10.0);
  EXPECT_NEAR(agent.q(0, 0), std::exp(-1.0) * -10.0, 1e-12);
}

TEST(TabularQ, GreedyPicksBestAction) {
  TabularQAgent agent(1, 3, opts(1.0, 0.5));
  agent.update_with_value(0, 0, -1.0, 1.0, 0.0);
  agent.update_with_value(0, 1, -0.1, 1.0, 0.0);
  agent.update_with_value(0, 2, -5.0, 1.0, 0.0);
  EXPECT_EQ(agent.greedy_action(0), 1u);
}

TEST(TabularQ, VisitsAreCounted) {
  TabularQAgent agent(2, 2, opts());
  agent.update(0, 1, 0.0, 1.0, 0);
  agent.update(0, 1, 0.0, 1.0, 0);
  EXPECT_EQ(agent.visits(0, 1), 2u);
  EXPECT_EQ(agent.visits(0, 0), 0u);
}

TEST(TabularQ, OutOfRangeThrows) {
  TabularQAgent agent(2, 2, opts());
  EXPECT_THROW(agent.q(2, 0), std::out_of_range);
  EXPECT_THROW(agent.q(0, 2), std::out_of_range);
  EXPECT_THROW(agent.update(2, 0, 0.0, 1.0, 0), std::out_of_range);
}

TEST(TabularQ, EpsilonOneExploresUniformly) {
  auto o = opts();
  o.epsilon = EpsilonSchedule::constant(1.0);
  TabularQAgent agent(1, 4, o);
  common::Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[agent.select_action(0, rng)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(TabularQ, EpsilonZeroIsGreedy) {
  TabularQAgent agent(1, 2, opts(1.0, 0.5));
  agent.update_with_value(0, 1, 1.0, 1e6, 0.0);  // make action 1 clearly best
  common::Rng rng(6);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.select_action(0, rng), 1u);
}

// Convergence on an analytically solvable continuous-time problem: a single
// state where action 0 yields reward rate -1 and action 1 yields -3, both
// with deterministic sojourn tau. Optimal Q*(a) solves
//   Q(a) = (1-e^{-b t})/b * r_a + e^{-b t} * max_a' Q(a')
// with max over both; since r_0 > r_1, max = Q(0) and
//   Q(0) = (1-d)/b * r_0 / (1-d),  with d = e^{-b t}  ->  Q(0) = r_0 / b.
TEST(TabularQ, ConvergesToAnalyticFixedPoint) {
  const double beta = 0.5, tau = 1.0;
  auto o = opts(0.2, beta);
  o.epsilon = EpsilonSchedule::constant(0.5);  // keep exploring both actions
  TabularQAgent agent(1, 2, o);
  common::Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t a = agent.select_action(0, rng);
    const double r = a == 0 ? -1.0 : -3.0;
    agent.update(0, a, r, tau, 0);
  }
  EXPECT_EQ(agent.greedy_action(0), 0u);
  EXPECT_NEAR(agent.q(0, 0), -1.0 / beta, 0.15);
  // Q(1) = (1-d)/b * r_1 + d * Q(0):
  const double d = std::exp(-beta * tau);
  EXPECT_NEAR(agent.q(0, 1), (1.0 - d) / beta * -3.0 + d * (-1.0 / beta), 0.3);
}

// Parameterized sweep: convergence holds across learning rates.
class TabularQConvergence : public testing::TestWithParam<double> {};

TEST_P(TabularQConvergence, LearnsBetterActionAcrossAlphas) {
  auto o = opts(GetParam(), 0.2);
  o.epsilon = EpsilonSchedule::constant(0.3);
  TabularQAgent agent(2, 2, o);
  common::Rng rng(8);
  // State 0: action 1 better; state 1: action 0 better. Transitions flip state.
  std::size_t s = 0;
  for (int i = 0; i < 6000; ++i) {
    const std::size_t a = agent.select_action(s, rng);
    const double good = (s == 0) ? 1.0 : 0.0;
    const double r = (a == good) ? -1.0 : -2.0;
    const std::size_t next = 1 - s;
    agent.update(s, a, r, 2.0, next);
    s = next;
  }
  EXPECT_EQ(agent.greedy_action(0), 1u);
  EXPECT_EQ(agent.greedy_action(1), 0u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, TabularQConvergence, testing::Values(0.05, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace hcrl::rl
