// The telemetry subsystem contracts: registry merge determinism across shard
// counts, histogram boundary semantics, snapshot schema stability, span /
// trace-event collection, trace JSON well-formedness, and — the load-bearing
// one — telemetry on vs. off bit-identity of full experiment results at both
// precisions, serial and sharded.
#include "src/telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stats.hpp"
#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/nn/precision.hpp"
#include "src/telemetry/export.hpp"
#include "src/telemetry/profiler.hpp"
#include "src/telemetry/trace.hpp"

namespace hcrl::telemetry {
namespace {

// ---- registry basics -------------------------------------------------------

TEST(MetricRegistry, CounterAccumulatesAndSnapshots) {
  MetricRegistry reg;
  const MetricId c = reg.counter("test.count");
  reg.add(0, c, 3);
  reg.add(0, c);
  const RegistrySnapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("test.count");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kCounter);
  EXPECT_EQ(v->count, 4u);
  EXPECT_EQ(v->value, 4.0);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricRegistry, DefinitionIsIdempotentByName) {
  MetricRegistry reg;
  const MetricId a = reg.counter("same");
  const MetricId b = reg.counter("same");
  EXPECT_EQ(a, b);
  const MetricId h1 = reg.histogram("hist", {1.0, 2.0});
  const MetricId h2 = reg.histogram("hist", {1.0, 2.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(MetricRegistry, KindAndBoundsMismatchesThrow) {
  MetricRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::logic_error);
  EXPECT_THROW(reg.histogram("name", {1.0}), std::logic_error);
  reg.histogram("hist", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("hist", {1.0, 3.0}), std::logic_error);
  EXPECT_THROW(reg.histogram("bad", {}), std::logic_error);
  EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), std::logic_error);
  EXPECT_THROW(reg.counter(""), std::logic_error);
}

TEST(MetricRegistry, GaugeMergesByMaximumAcrossShards) {
  MetricRegistry reg;
  const MetricId g = reg.gauge("test.gauge");
  reg.set_gauge(0, g, 5.0);
  reg.set_gauge(1, g, 9.0);
  reg.set_gauge(2, g, 7.0);
  reg.set_gauge(0, g, 1.0);  // last set per shard wins, then max over shards
  const RegistrySnapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("test.gauge");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 9.0);
  EXPECT_EQ(v->count, 4u);
}

// Histogram bin semantics: bins = bounds.size() + 1; a sample equal to a
// boundary lands in the bin ABOVE it (bin i covers [bounds[i-1], bounds[i])).
TEST(MetricRegistry, HistogramBoundaryEdgeCases) {
  MetricRegistry reg;
  const MetricId h = reg.histogram("h", {1.0, 2.0, 4.0});
  for (double x : {0.5, 1.0, 2.0, 3.9, 4.0, -5.0, 100.0}) reg.observe(0, h, x);
  const RegistrySnapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("h");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->bins.size(), 4u);
  EXPECT_EQ(v->bins[0], 2u);  // 0.5, -5.0        (x < 1)
  EXPECT_EQ(v->bins[1], 1u);  // 1.0              ([1, 2))
  EXPECT_EQ(v->bins[2], 2u);  // 2.0, 3.9         ([2, 4))
  EXPECT_EQ(v->bins[3], 2u);  // 4.0, 100.0       (x >= 4)
  EXPECT_EQ(v->count, 7u);
  EXPECT_EQ(v->value, 0.5 + 1.0 + 2.0 + 3.9 + 4.0 - 5.0 + 100.0);
}

// The tentpole merge contract: the merged snapshot is invariant to how the
// same samples were distributed over shards. Integer cells (counters, bin
// counts, sample counts) are exactly partition-invariant; the test uses
// exactly-representable sample values so the double sums are too.
TEST(MetricRegistry, MergeIsDeterministicAcrossShardCounts) {
  std::vector<RegistrySnapshot> snaps;
  for (const std::size_t num_shards : {1u, 2u, 5u}) {
    MetricRegistry reg;
    const MetricId c = reg.counter("c");
    const MetricId g = reg.gauge("g");
    const MetricId h = reg.histogram("h", {1.0, 8.0, 64.0});
    for (std::size_t i = 0; i < 100; ++i) {
      const std::size_t shard = i % num_shards;
      reg.add(shard, c, i);
      reg.set_gauge(shard, g, static_cast<double>(i));
      reg.observe(shard, h, static_cast<double>(i) * 0.5);
    }
    snaps.push_back(reg.snapshot());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    ASSERT_EQ(snaps[i].metrics.size(), snaps[0].metrics.size());
    for (std::size_t m = 0; m < snaps[0].metrics.size(); ++m) {
      const MetricValue& a = snaps[0].metrics[m];
      const MetricValue& b = snaps[i].metrics[m];
      SCOPED_TRACE(a.name + " @ shard-count variant " + std::to_string(i));
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.count, b.count);
      EXPECT_EQ(a.value, b.value);
      EXPECT_EQ(a.bins, b.bins);
    }
  }
}

TEST(MetricRegistry, ConcurrentWritersOnDistinctShards) {
  MetricRegistry reg;
  const MetricId c = reg.counter("c");
  const MetricId h = reg.histogram("h", duration_bounds());
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < 10000; ++i) {
        reg.add(t, c);
        if (i % 100 == 0) reg.observe(t, h, 1e-3);
      }
    });
  }
  for (auto& t : threads) t.join();
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("c")->count, 40000u);
  EXPECT_EQ(snap.find("h")->count, 400u);
}

TEST(MetricRegistry, ResetZeroesValuesButKeepsDefinitions) {
  MetricRegistry reg;
  const MetricId c = reg.counter("c");
  reg.add(0, c, 42);
  reg.reset();
  EXPECT_EQ(reg.num_metrics(), 1u);
  EXPECT_EQ(reg.snapshot().find("c")->count, 0u);
}

TEST(MetricRegistry, HistogramQuantilesMatchCommonStats) {
  MetricRegistry reg;
  const MetricId h = reg.histogram("h", {10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) reg.observe(0, h, 15.0);  // all in [10, 20)
  const RegistrySnapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("h");
  ASSERT_NE(v, nullptr);
  const double q = v->quantile(0.5);
  EXPECT_GE(q, 10.0);
  EXPECT_LE(q, 20.0);
  EXPECT_EQ(q, common::quantile_from_bins(v->bins, v->bounds, 0.5));
}

TEST(ShardScope, BindsAndRestoresThreadShard) {
  EXPECT_EQ(current_shard(), 0u);
  {
    ShardScope outer(3);
    EXPECT_EQ(current_shard(), 3u);
    {
      ShardScope inner(7);
      EXPECT_EQ(current_shard(), 7u);
    }
    EXPECT_EQ(current_shard(), 3u);
  }
  EXPECT_EQ(current_shard(), 0u);
}

TEST(Telemetry, HelpersAreNoOpsWhileDisabled) {
  ASSERT_FALSE(enabled());
  MetricRegistry& reg = global_registry();
  const MetricId c = reg.counter("test.disabled_noop");
  const std::uint64_t before = reg.snapshot().find("test.disabled_noop")->count;
  count(c, 5);
  observe(c, 1.0);  // wrong kind on purpose: must not even be reached
  EXPECT_EQ(reg.snapshot().find("test.disabled_noop")->count, before);
}

// ---- snapshot schema stability ---------------------------------------------

// The exported metric entries are a schema other tooling parses
// (BENCH-style diffing, CI artifacts). Pin the exact serialization of each
// metric kind; manifest values vary per build, so pin its key set instead.
TEST(Export, SnapshotSchemaIsStable) {
  MetricRegistry reg;
  const MetricId c = reg.counter("a.count");
  const MetricId g = reg.gauge("b.gauge");
  const MetricId h = reg.histogram("c.hist", {1.0, 2.0});
  reg.add(0, c, 7);
  reg.set_gauge(0, g, 2.5);
  // 16 in [1,2) and 4 in the overflow bin: every pinned number below is
  // exactly representable (p50 = 1 + 10/16, p95/p99 collapse onto the edge
  // boundary 2), so the golden string is stable.
  for (int i = 0; i < 16; ++i) reg.observe(0, h, 1.5);
  for (int i = 0; i < 4; ++i) reg.observe(0, h, 3.0);
  RunManifest manifest;
  manifest.tool = "test";
  manifest.scenario = "unit";
  manifest.precision = "f64";
  std::ostringstream os;
  write_metrics_json(os, reg.snapshot(), manifest);
  const std::string out = os.str();

  const std::string expected_metrics =
      "\"metrics\":{\n"
      "\"a.count\":{\"kind\":\"counter\",\"count\":7,\"value\":7},\n"
      "\"b.gauge\":{\"kind\":\"gauge\",\"count\":1,\"value\":2.5},\n"
      "\"c.hist\":{\"kind\":\"histogram\",\"count\":20,\"sum\":36,"
      "\"p50\":1.625,\"p95\":2,\"p99\":2,\"bounds\":[1,2],\"bins\":[0,16,4]}\n"
      "}}";
  EXPECT_NE(out.find("\"schema\":\"hcrl-metrics-v1\""), std::string::npos) << out;
  EXPECT_NE(out.find(expected_metrics), std::string::npos) << out;
  for (const char* key : {"\"tool\":\"test\"", "\"scenario\":\"unit\"", "\"precision\":\"f64\"",
                          "\"shards\":0", "\"gemm_threads\":1", "\"git_describe\":",
                          "\"wall_seconds\":0"}) {
    EXPECT_NE(out.find(key), std::string::npos) << "missing " << key << " in " << out;
  }
}

TEST(Export, ManifestPathSiblingRule) {
  EXPECT_EQ(manifest_path_for("runs/m.json"), "runs/m.manifest.json");
  EXPECT_EQ(manifest_path_for("metrics"), "metrics.manifest.json");
}

// ---- trace events ----------------------------------------------------------

// Minimal recursive-descent JSON validator — enough to prove the exporter
// emits structurally valid JSON without pulling in a parser dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, EmitsWellFormedJsonWithPerThreadTracks) {
  set_enabled(true);
  TraceCollector collector;
  collector.install();
  static const SpanDef kTestSpan("test.phase");
  {
    Span main_span(kTestSpan, "main work");
    std::thread worker([&] {
      set_thread_name("test-worker");
      Span span(kTestSpan);
    });
    worker.join();
  }
  collector.uninstall();
  set_enabled(false);

  EXPECT_EQ(collector.num_events(), 2u);
  std::ostringstream os;
  collector.write_json(os);
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"test-worker\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"label\":\"main work\"}"), std::string::npos);
}

TEST(Trace, SecondInstallThrowsAndSpansFeedHistograms) {
  set_enabled(true);
  TraceCollector collector;
  collector.install();
  TraceCollector other;
  EXPECT_THROW(other.install(), std::logic_error);

  MetricRegistry& reg = global_registry();
  static const SpanDef kSpan("test.span_histogram");
  const std::uint64_t before = reg.snapshot().find("test.span_histogram.seconds")->count;
  { Span span(kSpan); }
  EXPECT_EQ(reg.snapshot().find("test.span_histogram.seconds")->count, before + 1);

  collector.uninstall();
  set_enabled(false);
  EXPECT_FALSE(collector.installed());
}

// ---- bit-identity: telemetry must never perturb simulation results ---------

void expect_results_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  EXPECT_EQ(a.final_snapshot.now, b.final_snapshot.now);
  EXPECT_EQ(a.final_snapshot.jobs_completed, b.final_snapshot.jobs_completed);
  EXPECT_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_EQ(a.final_snapshot.accumulated_latency_s, b.final_snapshot.accumulated_latency_s);
  EXPECT_EQ(a.final_snapshot.average_power_watts, b.final_snapshot.average_power_watts);
  EXPECT_EQ(a.servers_on_at_end, b.servers_on_at_end);
  EXPECT_EQ(a.latency_p95_s, b.latency_p95_s);
  EXPECT_EQ(a.latency_p99_s, b.latency_p99_s);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].sim_time_s, b.series[i].sim_time_s);
    EXPECT_EQ(a.series[i].energy_kwh, b.series[i].energy_kwh);
    EXPECT_EQ(a.series[i].accumulated_latency_s, b.series[i].accumulated_latency_s);
  }
}

TEST(TelemetryBitIdentity, FullExperimentBothPrecisionsSerialAndSharded) {
  for (const nn::Precision precision : {nn::Precision::kF64, nn::Precision::kF32}) {
    for (const std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
      SCOPED_TRACE(std::string("precision=") + nn::to_string(precision) +
                   " shards=" + std::to_string(shards));
      core::Scenario scenario = core::ScenarioRegistry::builtin().make("tiny/hierarchical", 250);
      scenario.config.precision = precision;
      scenario.config.shards = shards;

      ASSERT_FALSE(enabled());
      const core::ExperimentResult off = core::run_scenario(scenario);

      // Full telemetry: metrics AND trace-event collection.
      TraceCollector collector;
      collector.install();
      set_enabled(true);
      const core::ExperimentResult on = core::run_scenario(scenario);
      set_enabled(false);
      collector.uninstall();

      expect_results_identical(on, off);
      EXPECT_GT(collector.num_events(), 0u);
      const RegistrySnapshot snap = global_registry().snapshot();
      EXPECT_GT(snap.find("sim.events")->count, 0u);
      EXPECT_GT(snap.find("core.decision.flushes")->count, 0u);
      EXPECT_GT(snap.find("nn.gemm.calls")->count, 0u);
      EXPECT_GT(snap.find("runner.scenarios")->count, 0u);
    }
  }
}

}  // namespace
}  // namespace hcrl::telemetry
