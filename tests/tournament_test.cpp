// Tournament harness contracts: the leaderboard is bit-identical between
// SerialRunner and ParallelRunner (at f64 and f32), row order is
// deterministic, and a mid-grid scenario failure lands in its cells without
// killing the run.
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/core/trace_source.hpp"
#include "src/policy/tournament.hpp"

namespace {

using namespace hcrl;

policy::TournamentOptions small_grid() {
  policy::TournamentOptions opts;
  for (const char* spec :
       {"round-robin+always-on", "best-fit+immediate-sleep", "tetris+fixed-timeout-30",
        "random-2+immediate-sleep", "first-fit-packing+rl-window"}) {
    opts.combos.push_back(policy::combo_from_string(spec));
  }
  opts.scenario_names = {"tiny/round-robin", "tiny/least-loaded"};
  opts.jobs = 150;
  opts.sla_latency_s = 300.0;
  return opts;
}

std::string leaderboard_csv(const policy::TournamentResult& result,
                            policy::LeaderboardColumns columns) {
  std::ostringstream out;
  policy::write_leaderboard_csv(out, result, columns);
  return out.str();
}

std::string cells_csv(const policy::TournamentResult& result,
                      policy::LeaderboardColumns columns) {
  std::ostringstream out;
  policy::write_cells_csv(out, result, columns);
  return out.str();
}

class ThrowingTraceSource final : public core::TraceSource {
 public:
  core::Trace produce() const override {
    throw std::runtime_error("synthetic trace outage");
  }
  std::string describe() const override { return "throwing"; }
};

// ---- serial vs parallel bit-identity ---------------------------------------

TEST(Tournament, LeaderboardBitIdenticalSerialVsParallel) {
  const policy::TournamentOptions opts = small_grid();
  core::SerialRunner serial;
  core::ParallelRunner parallel(4);
  const policy::TournamentResult a = policy::run_tournament(opts, serial);
  const policy::TournamentResult b = policy::run_tournament(opts, parallel);

  const auto columns = policy::LeaderboardColumns::kDeterministic;
  EXPECT_EQ(leaderboard_csv(a, columns), leaderboard_csv(b, columns));
  EXPECT_EQ(cells_csv(a, columns), cells_csv(b, columns));

  // Sanity: the grid actually ran.
  ASSERT_EQ(a.cells.size(), 10u);
  for (const auto& cell : a.cells) EXPECT_TRUE(cell.ok) << cell.scenario << ": " << cell.error;
}

// Forced-precision parity: the same grid at explicit f64 and f32 (via
// extra_scenarios so the cell precision is pinned regardless of the
// HCRL_PRECISION environment), each bit-identical across runners. The DRL
// combo makes the NN stack part of the grid, so precision is load-bearing.
TEST(Tournament, LeaderboardBitIdenticalAtBothPrecisions) {
  for (const nn::Precision precision : {nn::Precision::kF64, nn::Precision::kF32}) {
    SCOPED_TRACE(nn::to_string(precision));
    policy::TournamentOptions opts;
    opts.combos.push_back(policy::combo_from_string("best-fit+immediate-sleep"));
    opts.combos.push_back(policy::combo_from_string("drl+immediate-sleep"));
    opts.jobs = 100;
    opts.sla_latency_s = 300.0;
    core::Scenario scenario = core::ScenarioRegistry::builtin().make("tiny/round-robin", 100);
    scenario.config.precision = precision;
    scenario.config.pretrain_jobs = 25;
    opts.extra_scenarios.push_back(scenario);

    core::SerialRunner serial;
    core::ParallelRunner parallel(2);
    const policy::TournamentResult a = policy::run_tournament(opts, serial);
    const policy::TournamentResult b = policy::run_tournament(opts, parallel);
    const auto columns = policy::LeaderboardColumns::kDeterministic;
    EXPECT_EQ(leaderboard_csv(a, columns), leaderboard_csv(b, columns));
    EXPECT_EQ(cells_csv(a, columns), cells_csv(b, columns));
    for (const auto& cell : a.cells) EXPECT_TRUE(cell.ok) << cell.error;
  }
}

// ---- deterministic row order -----------------------------------------------

TEST(Tournament, RowOrderIsDeterministicAcrossRuns) {
  const policy::TournamentOptions opts = small_grid();
  core::SerialRunner runner;
  const policy::TournamentResult a = policy::run_tournament(opts, runner);
  const policy::TournamentResult b = policy::run_tournament(opts, runner);
  EXPECT_EQ(leaderboard_csv(a, policy::LeaderboardColumns::kDeterministic),
            leaderboard_csv(b, policy::LeaderboardColumns::kDeterministic));

  const std::vector<policy::LeaderboardRow> rows = policy::leaderboard(a);
  ASSERT_EQ(rows.size(), opts.combos.size());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& prev = rows[i - 1];
    const auto& cur = rows[i];
    const bool ordered =
        prev.scenarios_failed < cur.scenarios_failed ||
        (prev.scenarios_failed == cur.scenarios_failed &&
         (prev.energy_kwh < cur.energy_kwh ||
          (prev.energy_kwh == cur.energy_kwh && prev.combo < cur.combo)));
    EXPECT_TRUE(ordered) << rows[i - 1].combo << " vs " << rows[i].combo;
  }
}

TEST(Tournament, CellsCsvIsGridOrderedWithHeader) {
  const policy::TournamentOptions opts = small_grid();
  core::SerialRunner runner;
  const policy::TournamentResult result = policy::run_tournament(opts, runner);
  const std::string csv = cells_csv(result, policy::LeaderboardColumns::kWithTiming);
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("scenario,combo,allocator,power,status,error", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, result.cells.size());
  // Combo-major grid order: the first two rows belong to the first combo.
  EXPECT_EQ(result.cells[0].combo.label(), opts.combos[0].label());
  EXPECT_EQ(result.cells[1].combo.label(), opts.combos[0].label());
  EXPECT_EQ(result.cells[0].scenario, "tiny/round-robin");
  EXPECT_EQ(result.cells[1].scenario, "tiny/least-loaded");
}

// ---- per-cell failure capture ----------------------------------------------

TEST(Tournament, MidGridFailureIsCapturedPerCell) {
  policy::TournamentOptions opts;
  opts.combos.push_back(policy::combo_from_string("round-robin+always-on"));
  opts.combos.push_back(policy::combo_from_string("best-fit+immediate-sleep"));
  opts.scenario_names = {"tiny/round-robin"};
  opts.jobs = 120;

  core::Scenario bad = core::ScenarioRegistry::builtin().make("tiny/round-robin", 120);
  bad.name = "outage";
  bad.trace = std::make_shared<ThrowingTraceSource>();
  opts.extra_scenarios.push_back(bad);

  core::ParallelRunner runner(2);
  const policy::TournamentResult result = policy::run_tournament(opts, runner);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    if (cell.scenario == "outage") {
      EXPECT_FALSE(cell.ok);
      EXPECT_NE(cell.error.find("synthetic trace outage"), std::string::npos) << cell.error;
    } else {
      EXPECT_TRUE(cell.ok) << cell.error;
      EXPECT_EQ(cell.result.final_snapshot.jobs_completed, 120u);
    }
  }

  // The failure shows up in the leaderboard accounting and the cells CSV.
  const std::vector<policy::LeaderboardRow> rows = policy::leaderboard(result);
  for (const auto& row : rows) {
    EXPECT_EQ(row.scenarios_ok, 1u);
    EXPECT_EQ(row.scenarios_failed, 1u);
  }
  const std::string csv = cells_csv(result, policy::LeaderboardColumns::kDeterministic);
  EXPECT_NE(csv.find("synthetic trace outage"), std::string::npos);

  // The strict Runner::run wrapper still rethrows for non-tournament callers.
  std::vector<core::Scenario> cells = {bad};
  EXPECT_THROW(runner.run(cells), std::runtime_error);
}

// ---- combo parsing ---------------------------------------------------------

TEST(Tournament, ComboSugarParses) {
  const policy::PolicyCombo a = policy::combo_from_string("random-5+fixed-timeout-90");
  EXPECT_EQ(a.allocator, "random-k");
  EXPECT_EQ(a.allocator_opts.get_string("k"), "5");
  EXPECT_EQ(a.power, "fixed-timeout");
  EXPECT_EQ(a.power_opts.get_string("timeout_s"), "90");
  EXPECT_EQ(a.label(), "random-k(k=5)+fixed-timeout(timeout_s=90)");

  const policy::PolicyCombo b = policy::combo_from_string("tetris+rl-lstm");
  EXPECT_EQ(b.power, "rl-dpm");
  EXPECT_EQ(b.power_opts.get_string("predictor"), "lstm");

  EXPECT_THROW(policy::combo_from_string("best-fit"), std::invalid_argument);
  try {
    policy::combo_from_string("best-fti+always-on");
    FAIL() << "expected did-you-mean";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'best-fit'"), std::string::npos);
  }
  try {
    policy::combo_from_string("best-fit+always-off");
    FAIL() << "expected did-you-mean";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'always-on'"), std::string::npos);
  }
}

TEST(Tournament, DefaultGridIsWellFormed) {
  const std::vector<policy::PolicyCombo> combos = policy::default_combos();
  EXPECT_GE(combos.size(), 6u);
  const std::vector<std::string> scenarios = policy::default_scenario_names();
  EXPECT_GE(scenarios.size(), 4u);
  for (const std::string& name : scenarios) {
    EXPECT_TRUE(core::ScenarioRegistry::builtin().contains(name)) << name;
  }
}

}  // namespace
