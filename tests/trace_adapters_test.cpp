// Golden tests for the raw-schema format adapters: embedded snippets in
// each public dataset's native schema, with exact expected job tuples.
#include "src/workload/trace/adapters.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hcrl::workload::trace {
namespace {

// ---- format names -----------------------------------------------------------

TEST(TraceFormat, ParsesAndPrintsAllFormats) {
  EXPECT_EQ(parse_format("google2011"), TraceFormat::kGoogle2011);
  EXPECT_EQ(parse_format("alibaba2018"), TraceFormat::kAlibaba2018);
  EXPECT_EQ(parse_format("azure2017"), TraceFormat::kAzure2017);
  EXPECT_EQ(to_string(TraceFormat::kGoogle2011), "google2011");
  EXPECT_EQ(to_string(TraceFormat::kAlibaba2018), "alibaba2018");
  EXPECT_EQ(to_string(TraceFormat::kAzure2017), "azure2017");
}

TEST(TraceFormat, UnknownNameThrowsListingKnown) {
  try {
    parse_format("borg");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("alibaba2018"), std::string::npos);
  }
}

// ---- Google 2011 task_events ------------------------------------------------

// 13-column task_events rows: time_us, missing, job_id, task_index,
// machine_id, event_type, user, class, priority, cpu, mem, disk, constraint.
constexpr const char* kGoogleSnippet =
    "1000000,0,42,0,,0,alice,0,5,0.05,0.04,0.002,0\n"      // SUBMIT t=1s
    "2000000,0,42,0,m1,1,alice,0,5,0.05,0.04,0.002,0\n"    // SCHEDULE t=2s
    "3000000,0,42,1,,0,alice,0,5,0.1,0.08,0.004,0\n"       // SUBMIT task 1
    "3500000,0,99,7,,4,bob,1,2,,,,0\n"                     // FINISH w/o SUBMIT
    "4000000,0,43,0,,0,bob,2,2,,,,0\n"                     // SUBMIT, blank res
    "5000000,0,42,0,m1,4,alice,0,5,,,,0\n"                 // FINISH t=5s
    "not,a,valid,row\n"                                    // malformed
    "6000000,0,42,1,m2,8,alice,0,5,0.1,0.08,0.004,0\n"     // UPDATE_RUNNING
    "7000000,0,42,1,m2,4,alice,0,5,,,,0\n"                 // FINISH (no sched)
    "8000000,0,43,0,m3,5,bob,2,2,,,,0\n"                   // KILL task 43/0
    "9000000,0,77,0,,0,carol,0,1,0.2,0.1,0.01,0\n";        // SUBMIT, no finish

TEST(GoogleAdapter, PairsEventsIntoJobs) {
  std::istringstream in(kGoogleSnippet);
  AdapterReport report;
  const auto jobs = parse_google2011(in, &report);

  ASSERT_EQ(jobs.size(), 2u);
  // Task (42, 0): SUBMIT at 1 s, SCHEDULE at 2 s, FINISH at 5 s.
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(jobs[0].duration, 3.0);  // finish - schedule
  EXPECT_DOUBLE_EQ(jobs[0].demand[0], 0.05);
  EXPECT_DOUBLE_EQ(jobs[0].demand[1], 0.04);
  EXPECT_DOUBLE_EQ(jobs[0].demand[2], 0.002);
  // Task (42, 1): never scheduled, so duration falls back to finish - submit.
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 3.0);
  EXPECT_DOUBLE_EQ(jobs[1].duration, 4.0);
  EXPECT_DOUBLE_EQ(jobs[1].demand[0], 0.1);

  EXPECT_EQ(report.rows_read, 11u);
  EXPECT_EQ(report.jobs_emitted, 2u);
  EXPECT_EQ(report.rows_malformed, 1u);   // the 4-column row
  EXPECT_EQ(report.rows_filtered, 2u);    // stray FINISH + UPDATE_RUNNING
  EXPECT_EQ(report.unmatched_tasks, 2u);  // killed 43/0 + pending 77/0
}

TEST(GoogleAdapter, ResubmitReplacesTheStaleEntry) {
  std::istringstream in(
      "1000000,0,1,0,,0,u,0,0,0.1,0.1,0.01,0\n"
      "2000000,0,1,0,,0,u,0,0,0.2,0.2,0.02,0\n"  // re-SUBMIT with new demand
      "5000000,0,1,0,,4,u,0,0,,,,0\n");
  const auto jobs = parse_google2011(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 2.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[0], 0.2);
}

TEST(GoogleAdapter, BlankRequestsBecomeZero) {
  std::istringstream in(
      "1000000,0,1,0,,0,u,0,0,,,,0\n"
      "2000000,0,1,0,,4,u,0,0,,,,0\n");
  const auto jobs = parse_google2011(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].demand[0], 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[1], 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[2], 0.0);
}

TEST(GoogleAdapter, GarbageRequestsAreMalformedNotZero) {
  // Blank means "request unknown" (-> 0); non-blank garbage is corruption
  // and must be counted, not coerced.
  std::istringstream in(
      "1000000,0,1,0,,0,u,0,0,0x1f,0.1,0.01,0\n"
      "2000000,0,1,0,,4,u,0,0,,,,0\n");
  AdapterReport report;
  const auto jobs = parse_google2011(in, &report);
  EXPECT_TRUE(jobs.empty());
  EXPECT_EQ(report.rows_malformed, 1u);
  EXPECT_EQ(report.rows_filtered, 1u);  // the FINISH never saw a SUBMIT
}

// ---- Alibaba 2018 batch_task ------------------------------------------------

constexpr const char* kAlibabaSnippet =
    "task_1,1,j_1,1,Terminated,100,400,200,4.0\n"
    "task_2,5,j_1,2,Running,150,,200,4.0\n"       // no end time yet
    "task_3,1,j_2,1,Failed,160,190,100,2.0\n"     // non-terminal
    "task_4,1,j_2,2,Terminated,200,bad,100,2.0\n" // malformed end
    "task_5,2,j_3,1,Terminated,250,251,9600,50\n";

TEST(AlibabaAdapter, NormalizesPlanUnitsPerMachine) {
  std::istringstream in(kAlibabaSnippet);
  AdapterReport report;
  AdapterOptions options;  // 96-core machines, default_disk 0.01
  const auto jobs = parse_alibaba2018(in, options, &report);

  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 100.0);
  EXPECT_DOUBLE_EQ(jobs[0].duration, 300.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[0], 2.0 / 96.0);  // plan_cpu 200 = 2 cores
  EXPECT_DOUBLE_EQ(jobs[0].demand[1], 0.04);        // plan_mem 4% of a machine
  EXPECT_DOUBLE_EQ(jobs[0].demand[2], 0.01);
  // plan_cpu 9600 = the whole 96-core machine; plan_mem 50%.
  EXPECT_DOUBLE_EQ(jobs[1].demand[0], 1.0);
  EXPECT_DOUBLE_EQ(jobs[1].demand[1], 0.5);

  EXPECT_EQ(report.rows_read, 5u);
  EXPECT_EQ(report.rows_filtered, 2u);   // Running + Failed
  EXPECT_EQ(report.rows_malformed, 1u);  // bad end time
}

TEST(AlibabaAdapter, MachineCoresOptionRescalesCpu) {
  std::istringstream in("t,1,j,1,Terminated,0,60,100,1\n");
  AdapterOptions options;
  options.alibaba_machine_cores = 4.0;
  const auto jobs = parse_alibaba2018(in, options);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].demand[0], 0.25);  // 1 core of a 4-core machine
}

// ---- Azure 2017 vmtable -----------------------------------------------------

constexpr const char* kAzureSnippet =
    "vm1,sub1,dep1,300,3900,50,20,45,Interactive,4,14\n"
    "vm2,sub2,dep2,0,300,90,70,88,Unknown,>24,>112\n"
    "vm3,sub3,dep3,600,?,50,20,45,Delay-insensitive,2,7\n";  // malformed

TEST(AzureAdapter, NormalizesBucketsPerHost) {
  std::istringstream in(kAzureSnippet);
  AdapterReport report;
  AdapterOptions options;  // 64-core, 256 GB hosts
  const auto jobs = parse_azure2017(in, options, &report);

  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 300.0);
  EXPECT_DOUBLE_EQ(jobs[0].duration, 3600.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[0], 4.0 / 64.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[1], 14.0 / 256.0);
  EXPECT_DOUBLE_EQ(jobs[0].demand[2], 0.01);
  // Open-ended buckets parse as their bound.
  EXPECT_DOUBLE_EQ(jobs[1].demand[0], 24.0 / 64.0);
  EXPECT_DOUBLE_EQ(jobs[1].demand[1], 112.0 / 256.0);

  EXPECT_EQ(report.rows_read, 3u);
  EXPECT_EQ(report.rows_malformed, 1u);
}

TEST(AzureAdapter, OpenEndedBucketsAreAzureOnly) {
  // '>' belongs to Azure's bucket columns; in any other column (or any
  // other adapter) it must stay malformed, not parse as a number.
  std::istringstream azure_time("vm1,s,d,>300,3900,50,20,45,Interactive,4,14\n");
  AdapterReport report;
  EXPECT_TRUE(parse_azure2017(azure_time, {}, &report).empty());
  EXPECT_EQ(report.rows_malformed, 1u);

  std::istringstream google(">1000000,0,1,0,,0,u,0,0,0.1,0.1,0.01,0\n");
  EXPECT_TRUE(parse_google2011(google, &report).empty());
  EXPECT_EQ(report.rows_malformed, 1u);

  std::istringstream alibaba("t,1,j,1,Terminated,>0,60,100,1\n");
  EXPECT_TRUE(parse_alibaba2018(alibaba, {}, &report).empty());
  EXPECT_EQ(report.rows_malformed, 1u);
}

// ---- dispatch ---------------------------------------------------------------

TEST(Adapters, DispatchMatchesDirectCall) {
  std::istringstream in1(kAlibabaSnippet), in2(kAlibabaSnippet);
  const auto direct = parse_alibaba2018(in1);
  const auto dispatched = parse_raw_trace(TraceFormat::kAlibaba2018, in2);
  ASSERT_EQ(direct.size(), dispatched.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i].arrival, dispatched[i].arrival);
    EXPECT_DOUBLE_EQ(direct[i].duration, dispatched[i].duration);
  }
}

TEST(Adapters, MissingFileThrows) {
  EXPECT_THROW(parse_raw_trace_file(TraceFormat::kGoogle2011, "/no/such/file.csv"),
               std::runtime_error);
}

TEST(Adapters, BadOptionsRejected) {
  AdapterOptions options;
  options.alibaba_machine_cores = 0.0;
  std::istringstream in("t,1,j,1,Terminated,0,60,100,1\n");
  EXPECT_THROW(parse_alibaba2018(in, options), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::workload::trace
