// Calibration engine: the round-trip property (synthetic -> calibrate ->
// regenerate -> statistics within tolerance) plus KS-statistic unit tests.
//
// Tolerances: the fit is verified on a fresh realization of the fitted
// options, so sampling noise is part of the budget. With 4000 jobs, moment
// relative errors land well under 10% and two-sample KS under ~0.1 for
// distributions inside the generator's model family; the asserts use 15% /
// 0.12 to stay seed-robust (everything here is deterministic, but the
// margins document what the engine actually guarantees).
#include "src/workload/trace/calibrate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/workload/generator.hpp"

namespace hcrl::workload::trace {
namespace {

TEST(KsStatistic, IdenticalSamplesGiveZero) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(KsStatistic, DisjointSamplesGiveOne) {
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0, 3.0}, {10.0, 11.0}), 1.0);
}

TEST(KsStatistic, KnownOverlapValue) {
  // F1 jumps at 1,2; F2 jumps at 2,3 -> sup gap 0.5 at x in [1,2).
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0}, {2.0, 3.0}), 0.5);
}

TEST(KsStatistic, EmptySampleThrows) {
  EXPECT_THROW(ks_statistic({}, {1.0}), std::invalid_argument);
}

TEST(Calibrate, TooFewJobsThrows) {
  std::vector<sim::Job> jobs(3);
  EXPECT_THROW(calibrate(jobs), std::invalid_argument);
}

// The headline round trip: draw a trace from known generator options, fit
// fresh options from the realized jobs alone, regenerate, and require the
// fitted twin's statistics to match.
TEST(Calibrate, RoundTripRecoversTheGenerator) {
  GeneratorOptions truth;
  truth.num_jobs = 4000;
  truth.horizon_s = 4000.0 * 6.4;
  truth.seed = 99;
  const auto jobs = GoogleTraceGenerator(truth).generate();

  CalibrationOptions cal;
  cal.seed = 1234;  // fit must not depend on knowing the original seed
  const CalibrationResult result = calibrate(jobs, cal);
  const GeneratorOptions& fit = result.options;

  // Structural knobs recovered from the data.
  EXPECT_EQ(fit.num_jobs, truth.num_jobs);
  EXPECT_NEAR(fit.duration_log_mean, truth.duration_log_mean, 0.15);
  EXPECT_NEAR(fit.duration_log_sigma, truth.duration_log_sigma, 0.20);
  EXPECT_NEAR(fit.cpu_exp_mean, truth.cpu_exp_mean, 0.3 * truth.cpu_exp_mean);
  EXPECT_GT(fit.burst_multiplier, 1.0);  // the truth is bursty (MMPP x4)

  // Regenerated statistics match the empirical trace.
  const CalibrationReport& report = result.report;
  ASSERT_EQ(report.rows.size(), 5u);
  for (const auto& row : report.rows) {
    SCOPED_TRACE(row.quantity);
    EXPECT_LT(row.rel_error, 0.15);
    EXPECT_GE(row.ks_statistic, 0.0);
    EXPECT_LT(row.ks_statistic, 0.12);
  }
  EXPECT_LT(report.worst_rel_error(), 0.15);
  EXPECT_NEAR(report.empirical.mean_duration_s, report.synthetic.mean_duration_s,
              0.15 * report.empirical.mean_duration_s);
  EXPECT_NEAR(report.empirical.mean_cpu, report.synthetic.mean_cpu,
              0.15 * report.empirical.mean_cpu);
}

TEST(Calibrate, PoissonLikeTraceCollapsesTheBurstModel) {
  // Constant-rate arrivals (CV ~= sqrt of nothing special): build arrivals
  // by hand with exponential gaps via the generator's own jobs but
  // uniformized arrival times.
  GeneratorOptions opts;
  opts.num_jobs = 1000;
  opts.horizon_s = 64000.0;
  opts.burst_multiplier = 1.0;  // plain (diurnal-only) process
  opts.diurnal_amplitude = 0.0;
  opts.seed = 5;
  const auto jobs = GoogleTraceGenerator(opts).generate();

  const CalibrationResult result = calibrate(jobs);
  EXPECT_DOUBLE_EQ(result.options.burst_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(result.options.diurnal_amplitude, 0.0);
  EXPECT_LE(result.report.interarrival_cv, 1.1);
}

TEST(Calibrate, FittedOptionsAlwaysValidate) {
  // Degenerate-ish input: every job identical. The fit must still produce
  // options the generator accepts.
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 20; ++i) {
    sim::Job j;
    j.id = i;
    j.arrival = 10.0 * i;
    j.duration = 120.0;
    j.demand = sim::ResourceVector{0.25, 0.25, 0.02};
    jobs.push_back(j);
  }
  const CalibrationResult result = calibrate(jobs);
  EXPECT_NO_THROW(result.options.validate());
  EXPECT_EQ(result.options.num_jobs, 20u);
  EXPECT_DOUBLE_EQ(result.options.burst_multiplier, 1.0);  // CV = 0
}

TEST(Calibrate, ReportSerializesToCsv) {
  GeneratorOptions opts;
  opts.num_jobs = 500;
  opts.horizon_s = 3200.0;
  const auto jobs = GoogleTraceGenerator(opts).generate();
  const auto result = calibrate(jobs);

  std::ostringstream out;
  result.report.write_csv(out);
  std::istringstream in(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "quantity,empirical_mean,synthetic_mean,rel_error,ks_statistic");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, result.report.rows.size());

  EXPECT_NE(result.report.to_string().find("interarrival_s"), std::string::npos);
}

TEST(Calibrate, HorizonOverrideIsRespected) {
  GeneratorOptions opts;
  opts.num_jobs = 300;
  opts.horizon_s = 1920.0;
  const auto jobs = GoogleTraceGenerator(opts).generate();
  CalibrationOptions cal;
  cal.horizon_s = 5000.0;
  const auto result = calibrate(jobs, cal);
  EXPECT_DOUBLE_EQ(result.options.horizon_s, 5000.0);
}

}  // namespace
}  // namespace hcrl::workload::trace
