// TraceCatalog + the real-trace scenario registry entries: bundled fixture
// slices load, normalize, and run end-to-end — and the acceptance property
// that ParallelRunner output is bit-identical to SerialRunner on the
// real-trace scenarios, exactly as runner_test pins for synthetic ones.
#include "src/workload/trace/catalog.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/core/trace_source.hpp"
#include "src/workload/trace/calibrate.hpp"
#include "src/workload/trace_io.hpp"

namespace hcrl {
namespace {

using workload::trace::TraceCatalog;

// ---- the catalog itself -----------------------------------------------------

TEST(TraceCatalog, BuiltinListsTheBundledDatasets) {
  const auto& c = TraceCatalog::builtin();
  EXPECT_TRUE(c.contains("google2011-sample"));
  EXPECT_TRUE(c.contains("alibaba2018-sample"));
  EXPECT_TRUE(c.contains("azure2017-sample"));
  EXPECT_FALSE(c.contains("borg-sample"));
  EXPECT_EQ(c.names().size(), 3u);

  // Provenance is part of the entry, not a README afterthought.
  for (const auto& name : c.names()) {
    const auto& e = c.entry(name);
    EXPECT_FALSE(e.description.empty());
    EXPECT_NE(e.source_url.find("https://"), std::string::npos);
    EXPECT_FALSE(e.fetch_hint.empty());
  }
}

TEST(TraceCatalog, UnknownDatasetThrowsListingKnown) {
  try {
    TraceCatalog::builtin().entry("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("google2011-sample"), std::string::npos);
  }
}

TEST(TraceCatalog, EveryFixtureLoadsCleanAndSurvivesTraceIo) {
  for (const auto& name : TraceCatalog::builtin().names()) {
    SCOPED_TRACE(name);
    workload::trace::AdapterReport adapter_report;
    workload::trace::NormalizeReport normalize_report;
    const auto jobs = TraceCatalog::builtin().load(name, &adapter_report, &normalize_report);

    EXPECT_GE(jobs.size(), 200u);  // the slices are a few hundred jobs
    EXPECT_EQ(normalize_report.rows_out, jobs.size());
    EXPECT_GT(adapter_report.rows_read, jobs.size() / 2);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_NO_THROW(jobs[i].validate(3));
      if (i > 0) {
        EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
      }
    }
    // Round-trips through the strict canonical reader.
    std::stringstream buf;
    workload::write_trace(buf, jobs);
    EXPECT_EQ(workload::read_trace(buf).size(), jobs.size());
  }
}

TEST(TraceCatalog, LoadIsDeterministic) {
  const auto a = TraceCatalog::builtin().load("google2011-sample");
  const auto b = TraceCatalog::builtin().load("google2011-sample");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].demand[0], b[i].demand[0]);
  }
}

// ---- CatalogTraceSource -----------------------------------------------------

TEST(CatalogTraceSource, ProducesCachedTraceWithStats) {
  const core::CatalogTraceSource source("alibaba2018-sample");
  EXPECT_EQ(source.describe(), "catalog(alibaba2018-sample)");
  const core::Trace t = source.produce();
  EXPECT_GE(t.jobs.size(), 200u);
  EXPECT_GT(t.horizon_s, 0.0);
  EXPECT_EQ(t.stats.num_jobs, t.jobs.size());
  const core::Trace t2 = source.produce();
  EXPECT_EQ(t.jobs.size(), t2.jobs.size());
}

TEST(CatalogTraceSource, UnknownDatasetFailsAtConstruction) {
  EXPECT_THROW(core::CatalogTraceSource("not-a-dataset"), std::invalid_argument);
}

// ---- registry scenarios: the acceptance property ----------------------------

void expect_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.servers_on_at_end, b.servers_on_at_end);
  EXPECT_EQ(a.final_snapshot.now, b.final_snapshot.now);
  EXPECT_EQ(a.final_snapshot.jobs_completed, b.final_snapshot.jobs_completed);
  EXPECT_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_EQ(a.final_snapshot.accumulated_latency_s, b.final_snapshot.accumulated_latency_s);
  EXPECT_EQ(a.final_snapshot.average_power_watts, b.final_snapshot.average_power_watts);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].energy_kwh, b.series[i].energy_kwh);
    EXPECT_EQ(a.series[i].sim_time_s, b.series[i].sim_time_s);
  }
  EXPECT_EQ(a.trace_stats.num_jobs, b.trace_stats.num_jobs);
  EXPECT_EQ(a.trace_stats.mean_cpu, b.trace_stats.mean_cpu);
}

TEST(TraceScenarios, RegistryContainsTheRealTraceEntries) {
  const auto& r = core::ScenarioRegistry::builtin();
  EXPECT_TRUE(r.contains("google2011-sample"));
  EXPECT_TRUE(r.contains("alibaba2018-sample"));
  EXPECT_TRUE(r.contains("google2011-calibrated"));
  EXPECT_TRUE(r.contains("alibaba2018-calibrated"));
}

TEST(TraceScenarios, ParallelMatchesSerialBitForBitOnRealTraces) {
  const auto& registry = core::ScenarioRegistry::builtin();
  std::vector<core::Scenario> batch;
  for (const char* name : {"google2011-sample", "alibaba2018-sample",
                           "google2011-calibrated", "alibaba2018-calibrated"}) {
    batch.push_back(registry.make(name, 0));
  }

  const auto serial = core::SerialRunner().run(batch);
  const auto parallel = core::ParallelRunner(4).run(batch);
  ASSERT_EQ(serial.size(), batch.size());
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i].name);
    expect_identical(serial[i], parallel[i]);
    EXPECT_EQ(serial[i].final_snapshot.jobs_completed, serial[i].trace_stats.num_jobs);
  }
}

TEST(TraceScenarios, CalibratedTwinMirrorsTheFixtureStatistics) {
  // The twin is fitted to the fixture; its realized trace statistics must
  // land near the fixture's (the calibration engine's own GoF bound is
  // tighter — this pins the end-to-end registry path).
  const core::Trace fixture = core::CatalogTraceSource("google2011-sample").produce();
  const core::Scenario twin = core::ScenarioRegistry::builtin().make("google2011-calibrated", 0);
  const core::Trace synth = twin.effective_trace()->produce();

  EXPECT_EQ(synth.jobs.size(), fixture.jobs.size());
  EXPECT_NEAR(synth.stats.mean_duration_s, fixture.stats.mean_duration_s,
              0.2 * fixture.stats.mean_duration_s);
  EXPECT_NEAR(synth.stats.mean_cpu, fixture.stats.mean_cpu, 0.2 * fixture.stats.mean_cpu);
  EXPECT_NEAR(synth.stats.mean_interarrival_s, fixture.stats.mean_interarrival_s,
              0.25 * fixture.stats.mean_interarrival_s);
}

TEST(TraceScenarios, CalibratedTwinRescalesToRequestedJobs) {
  const core::Scenario twin = core::ScenarioRegistry::builtin().make("google2011-calibrated", 900);
  const core::ExperimentConfig cfg = twin.materialized();
  EXPECT_EQ(cfg.trace.num_jobs, 900u);
  // Scaling preserves the fitted arrival rate.
  const core::Scenario native = core::ScenarioRegistry::builtin().make("google2011-calibrated", 0);
  const double native_rate = static_cast<double>(native.config.trace.num_jobs) /
                             native.config.trace.horizon_s;
  const double scaled_rate = 900.0 / cfg.trace.horizon_s;
  EXPECT_NEAR(scaled_rate, native_rate, 1e-9 * native_rate);
}

}  // namespace
}  // namespace hcrl
