#include "src/workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/workload/generator.hpp"

namespace hcrl::workload {
namespace {

std::vector<sim::Job> sample_jobs() {
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 5; ++i) {
    sim::Job j;
    j.id = i;
    j.arrival = i * 3.25;
    j.duration = 60.0 + i;
    j.demand = sim::ResourceVector{0.1 + 0.01 * i, 0.2, 0.05};
    jobs.push_back(j);
  }
  return jobs;
}

TEST(TraceIo, RoundTripPreservesValues) {
  const auto jobs = sample_jobs();
  std::stringstream buf;
  write_trace(buf, jobs);
  const auto loaded = read_trace(buf);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].arrival, jobs[i].arrival);
    EXPECT_DOUBLE_EQ(loaded[i].duration, jobs[i].duration);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(loaded[i].demand[d], jobs[i].demand[d]);
    }
  }
}

TEST(TraceIo, HeaderIsWritten) {
  std::stringstream buf;
  write_trace(buf, sample_jobs());
  std::string header;
  std::getline(buf, header);
  EXPECT_EQ(header, "id,arrival,duration,cpu,memory,disk");
}

TEST(TraceIo, EmptyInputRejected) {
  std::stringstream buf("");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, BadHeaderRejected) {
  std::stringstream buf("foo,bar,baz,qux\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, WrongColumnCountRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,0.0,60.0\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, NonNumericFieldRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,zero,60.0,0.1\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, UnsortedArrivalsRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,10.0,60.0,0.1\n2,5.0,60.0,0.1\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, InvalidJobFieldsRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,0.0,0.0,0.1\n");  // duration 0
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/hcrl_trace_test.csv";
  write_trace_file(path, sample_jobs());
  const auto loaded = read_trace_file(path);
  EXPECT_EQ(loaded.size(), 5u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/no/such/trace.csv"), std::runtime_error);
}

TEST(TraceIo, GeneratedTraceRoundTrips) {
  GeneratorOptions o;
  o.num_jobs = 500;
  o.horizon_s = 36000.0;
  const auto jobs = GoogleTraceGenerator(o).generate();
  std::stringstream buf;
  write_trace(buf, jobs);
  const auto loaded = read_trace(buf);
  ASSERT_EQ(loaded.size(), jobs.size());
  EXPECT_DOUBLE_EQ(loaded[250].arrival, jobs[250].arrival);
  EXPECT_DOUBLE_EQ(loaded[250].demand[2], jobs[250].demand[2]);
}

}  // namespace
}  // namespace hcrl::workload
