#include "src/workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/workload/generator.hpp"

namespace hcrl::workload {
namespace {

std::vector<sim::Job> sample_jobs() {
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 5; ++i) {
    sim::Job j;
    j.id = i;
    j.arrival = i * 3.25;
    j.duration = 60.0 + i;
    j.demand = sim::ResourceVector{0.1 + 0.01 * i, 0.2, 0.05};
    jobs.push_back(j);
  }
  return jobs;
}

TEST(TraceIo, RoundTripPreservesValues) {
  const auto jobs = sample_jobs();
  std::stringstream buf;
  write_trace(buf, jobs);
  const auto loaded = read_trace(buf);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].arrival, jobs[i].arrival);
    EXPECT_DOUBLE_EQ(loaded[i].duration, jobs[i].duration);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(loaded[i].demand[d], jobs[i].demand[d]);
    }
  }
}

TEST(TraceIo, HeaderIsWritten) {
  std::stringstream buf;
  write_trace(buf, sample_jobs());
  std::string header;
  std::getline(buf, header);
  EXPECT_EQ(header, "id,arrival,duration,cpu,memory,disk");
}

TEST(TraceIo, EmptyInputRejected) {
  std::stringstream buf("");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, BadHeaderRejected) {
  std::stringstream buf("foo,bar,baz,qux\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, WrongColumnCountRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,0.0,60.0\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, NonNumericFieldRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,zero,60.0,0.1\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, UnsortedArrivalsRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,10.0,60.0,0.1\n2,5.0,60.0,0.1\n");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, InvalidJobFieldsRejected) {
  std::stringstream buf("id,arrival,duration,cpu\n1,0.0,0.0,0.1\n");  // duration 0
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/hcrl_trace_test.csv";
  write_trace_file(path, sample_jobs());
  const auto loaded = read_trace_file(path);
  EXPECT_EQ(loaded.size(), 5u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/no/such/trace.csv"), std::runtime_error);
}

// ---- diagnostics: malformed rows name the line and the offending field ----

std::string error_message_of(const std::string& csv) {
  std::stringstream buf(csv);
  try {
    read_trace(buf);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument for: " << csv;
  return "";
}

TEST(TraceIo, NonNumericErrorNamesLineColumnAndValue) {
  const std::string msg = error_message_of(
      "id,arrival,duration,cpu\n1,0.0,60.0,0.1\n2,zero,60.0,0.1\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'arrival'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'zero'"), std::string::npos) << msg;
}

TEST(TraceIo, ColumnCountErrorNamesLine) {
  const std::string msg = error_message_of("id,arrival,duration,cpu\n1,0.0,60.0\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 4 columns, got 3"), std::string::npos) << msg;
}

TEST(TraceIo, UnsortedErrorNamesLine) {
  const std::string msg = error_message_of(
      "id,arrival,duration,cpu\n1,10.0,60.0,0.1\n2,5.0,60.0,0.1\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not sorted"), std::string::npos) << msg;
}

TEST(TraceIo, InvalidJobErrorNamesLine) {
  const std::string msg = error_message_of("id,arrival,duration,cpu\n7,0.0,0.0,0.1\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duration"), std::string::npos) << msg;
}

TEST(TraceIo, NonFiniteValuesRejected) {
  // std::stod consumes "nan"/"inf"; NaN then slips past every range check
  // (all comparisons false), so the reader must reject non-finite cells.
  const std::string nan_msg = error_message_of("id,arrival,duration,cpu\n2,nan,60.0,0.1\n");
  EXPECT_NE(nan_msg.find("'nan'"), std::string::npos) << nan_msg;
  const std::string inf_msg = error_message_of("id,arrival,duration,cpu\n2,0.0,inf,0.1\n");
  EXPECT_NE(inf_msg.find("'inf'"), std::string::npos) << inf_msg;
}

TEST(TraceIo, PartiallyNumericFieldRejected) {
  // std::stod would accept the "60.0" prefix; the reader must not.
  const std::string msg = error_message_of("id,arrival,duration,cpu\n1,0.0,60.0x,0.1\n");
  EXPECT_NE(msg.find("'60.0x'"), std::string::npos) << msg;
}

TEST(TraceIo, BlankLinesCountTowardReportedLineNumbers) {
  const std::string msg = error_message_of(
      "id,arrival,duration,cpu\n\n1,0.0,60.0,0.1\n\n2,bad,60.0,0.1\n");
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
}

TEST(TraceIo, SixtyFourBitIdsRoundTripExactly) {
  // Above 2^53 a double-typed id column would silently round.
  sim::Job j;
  j.id = 9007199254740993LL;  // 2^53 + 1
  j.arrival = 0.0;
  j.duration = 60.0;
  j.demand = sim::ResourceVector{0.1, 0.1, 0.01};
  std::stringstream buf;
  write_trace(buf, {j});
  const auto loaded = read_trace(buf);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].id, 9007199254740993LL);
}

TEST(TraceIo, FractionalIdRejected) {
  const std::string msg = error_message_of("id,arrival,duration,cpu\n3.9,0.0,60.0,0.1\n");
  EXPECT_NE(msg.find("non-integer"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'3.9'"), std::string::npos) << msg;
}

TEST(TraceIo, CrlfAndTrailingNewlinesTolerated) {
  std::stringstream buf(
      "id,arrival,duration,cpu\r\n1,0.0,60.0,0.1\r\n2,5.5,61.0,0.2\r\n\r\n\n");
  const auto jobs = read_trace(buf);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 5.5);
  EXPECT_DOUBLE_EQ(jobs[1].demand[0], 0.2);
}

TEST(TraceIo, GeneratedTraceRoundTrips) {
  GeneratorOptions o;
  o.num_jobs = 500;
  o.horizon_s = 36000.0;
  const auto jobs = GoogleTraceGenerator(o).generate();
  std::stringstream buf;
  write_trace(buf, jobs);
  const auto loaded = read_trace(buf);
  ASSERT_EQ(loaded.size(), jobs.size());
  EXPECT_DOUBLE_EQ(loaded[250].arrival, jobs[250].arrival);
  EXPECT_DOUBLE_EQ(loaded[250].demand[2], jobs[250].demand[2]);
}

}  // namespace
}  // namespace hcrl::workload
