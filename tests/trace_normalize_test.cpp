// Normalization pipeline edge cases: messy adapter output in, strict
// simulator-ready rows out, with every repair counted.
#include "src/workload/trace/normalize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/workload/trace_io.hpp"

namespace hcrl::workload::trace {
namespace {

sim::Job make_job(double arrival, double duration, double cpu = 0.1, double mem = 0.1,
                  double disk = 0.01) {
  sim::Job j;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = sim::ResourceVector{cpu, mem, disk};
  return j;
}

/// Pass-through options: no duration clip, no demand repair beyond a
/// vanishing floor — isolates the stage under test.
NormalizeOptions loose() {
  NormalizeOptions o;
  o.min_duration_s = std::numeric_limits<double>::min();
  o.max_duration_s = std::numeric_limits<double>::infinity();
  o.resource_floor = std::numeric_limits<double>::min();
  return o;
}

TEST(Normalize, SortsRebasesAndRenumbers) {
  std::vector<sim::Job> jobs = {make_job(5000.0, 60.0), make_job(4000.0, 30.0),
                                make_job(4500.0, 10.0)};
  NormalizeReport report;
  const auto out = normalize(jobs, loose(), &report);

  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].arrival, 0.0);    // rebased to t = 0
  EXPECT_DOUBLE_EQ(out[1].arrival, 500.0);  // 4500 - 4000
  EXPECT_DOUBLE_EQ(out[2].arrival, 1000.0);
  EXPECT_DOUBLE_EQ(out[0].duration, 30.0);  // the 4000 s arrival sorted first
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, static_cast<sim::JobId>(i));
  }
  EXPECT_EQ(report.rows_in, 3u);
  EXPECT_EQ(report.rows_out, 3u);
}

TEST(Normalize, DropsZeroDurationAndNonFiniteRows) {
  std::vector<sim::Job> jobs = {
      make_job(0.0, 60.0),
      make_job(1.0, 0.0),                                        // zero duration
      make_job(2.0, -5.0),                                       // negative duration
      make_job(3.0, std::numeric_limits<double>::quiet_NaN()),   // NaN duration
      make_job(std::numeric_limits<double>::infinity(), 60.0),   // inf arrival
      make_job(5.0, 60.0, std::nan("")),                         // NaN demand
      make_job(6.0, 60.0),
  };
  NormalizeReport report;
  const auto out = normalize(jobs, loose(), &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.dropped_invalid, 5u);
}

TEST(Normalize, DropsRowsWithMinorityDims) {
  std::vector<sim::Job> jobs = {make_job(0.0, 60.0), make_job(1.0, 60.0)};
  sim::Job two_dim;
  two_dim.arrival = 2.0;
  two_dim.duration = 60.0;
  two_dim.demand = sim::ResourceVector{0.1, 0.1};
  jobs.push_back(two_dim);
  NormalizeReport report;
  const auto out = normalize(jobs, loose(), &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.dropped_invalid, 1u);
}

TEST(Normalize, DropsExactDuplicates) {
  std::vector<sim::Job> jobs = {make_job(10.0, 60.0), make_job(10.0, 60.0),
                                make_job(10.0, 61.0)};  // same arrival, not a dup
  NormalizeReport report;
  const auto out = normalize(jobs, loose(), &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.dropped_duplicate, 1u);
}

TEST(Normalize, DropsDuplicatesInterleavedAtOneTimestamp) {
  // Event logs repeat rows at identical timestamps with other rows in
  // between; the full-row sort key must still bring them together.
  std::vector<sim::Job> jobs = {make_job(10.0, 60.0, 0.1), make_job(10.0, 61.0, 0.2),
                                make_job(10.0, 60.0, 0.1)};
  NormalizeReport report;
  const auto out = normalize(jobs, loose(), &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.dropped_duplicate, 1u);
}

TEST(Normalize, WindowSlicesOnRebasedTimeAndRebasesAgain) {
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(make_job(1000.0 + 100.0 * i, 60.0));
  NormalizeOptions o = loose();
  o.window_start_s = 300.0;  // rebased arrivals are 0, 100, ..., 900
  o.window_end_s = 700.0;
  NormalizeReport report;
  const auto out = normalize(jobs, o, &report);
  ASSERT_EQ(out.size(), 4u);  // 300, 400, 500, 600
  EXPECT_DOUBLE_EQ(out[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(out[3].arrival, 300.0);
  EXPECT_EQ(report.dropped_window, 6u);
}

TEST(Normalize, DownsamplingIsDeterministicAndExact) {
  std::vector<sim::Job> jobs;
  for (int i = 0; i < 500; ++i) jobs.push_back(make_job(i * 10.0, 60.0 + i));
  NormalizeOptions o = loose();
  o.max_jobs = 120;
  o.sample_seed = 7;
  NormalizeReport report;
  const auto a = normalize(jobs, o, &report);
  const auto b = normalize(jobs, o);
  ASSERT_EQ(a.size(), 120u);
  EXPECT_EQ(report.dropped_sampled, 380u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].duration, b[i].duration);  // bit-identical reruns
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);  // order preserved
    }
  }
  // A different seed keeps a different subset.
  o.sample_seed = 8;
  const auto c = normalize(jobs, o);
  ASSERT_EQ(c.size(), 120u);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_different |= a[i].duration != c[i].duration;
  EXPECT_TRUE(any_different);
}

TEST(Normalize, ClampsOutOfRangeResources) {
  std::vector<sim::Job> jobs = {make_job(0.0, 60.0, 0.0, 2.5, 0.5),
                                make_job(1.0, 60.0, 0.5, 0.5, 0.01)};
  NormalizeOptions o = loose();
  o.resource_floor = 0.005;
  o.resource_cap = 1.0;
  NormalizeReport report;
  const auto out = normalize(jobs, o, &report);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].demand[0], 0.005);  // floored
  EXPECT_DOUBLE_EQ(out[0].demand[1], 1.0);    // capped
  EXPECT_EQ(report.clamped_demands, 1u);      // one job touched, counted once
}

TEST(Normalize, RescalePeakMapsLargestComponent) {
  std::vector<sim::Job> jobs = {make_job(0.0, 60.0, 4.0, 2.0, 1.0),
                                make_job(1.0, 60.0, 2.0, 1.0, 1.0)};
  NormalizeOptions o = loose();
  o.rescale_peak = 0.5;
  NormalizeReport report;
  const auto out = normalize(jobs, o, &report);
  EXPECT_DOUBLE_EQ(report.rescale_factor, 0.125);  // 0.5 / 4.0
  EXPECT_DOUBLE_EQ(out[0].demand[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1].demand[0], 0.25);
}

TEST(Normalize, ClampsDurationsLikeThePaper) {
  std::vector<sim::Job> jobs = {make_job(0.0, 5.0), make_job(1.0, 600.0),
                                make_job(2.0, 90000.0)};
  NormalizeReport report;
  const auto out = normalize(jobs, NormalizeOptions{}, &report);  // paper clip [60, 7200]
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].duration, 60.0);
  EXPECT_DOUBLE_EQ(out[1].duration, 600.0);
  EXPECT_DOUBLE_EQ(out[2].duration, 7200.0);
  EXPECT_EQ(report.clamped_durations, 2u);
}

TEST(Normalize, OutputSurvivesStrictTraceIo) {
  // Deliberately messy input: unsorted, duplicated, out-of-range demands.
  std::vector<sim::Job> jobs = {make_job(900.0, 30.0, 3.0, 0.0, 0.7),
                                make_job(100.0, 0.5), make_job(500.0, 9999999.0),
                                make_job(500.0, 9999999.0)};
  const auto out = normalize(jobs);
  std::stringstream buf;
  write_trace(buf, out);
  const auto loaded = read_trace(buf);  // throws if anything is out of spec
  EXPECT_EQ(loaded.size(), out.size());
}

TEST(Normalize, EmptyInputAndBadOptions) {
  NormalizeReport report;
  EXPECT_TRUE(normalize({}, NormalizeOptions{}, &report).empty());
  EXPECT_EQ(report.rows_in, 0u);

  NormalizeOptions bad;
  bad.window_end_s = -1.0;
  EXPECT_THROW(normalize({}, bad), std::invalid_argument);
  NormalizeOptions bad2;
  bad2.resource_floor = 0.0;
  EXPECT_THROW(normalize({}, bad2), std::invalid_argument);
  NormalizeOptions bad3;
  bad3.min_duration_s = 10.0;
  bad3.max_duration_s = 5.0;
  EXPECT_THROW(normalize({}, bad3), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::workload::trace
