#include "src/sim/types.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::sim {
namespace {

TEST(ResourceVector, ConstructionVariants) {
  ResourceVector a(3, 0.5);
  EXPECT_EQ(a.dims(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 0.5);
  ResourceVector b{0.1, 0.2};
  EXPECT_EQ(b.dims(), 2u);
  EXPECT_DOUBLE_EQ(b[1], 0.2);
}

TEST(ResourceVector, AddSubtractRoundTrip) {
  ResourceVector a{0.5, 0.6, 0.7};
  const ResourceVector b{0.1, 0.2, 0.3};
  a.add(b);
  EXPECT_DOUBLE_EQ(a[0], 0.6);
  a.subtract(b);
  EXPECT_NEAR(a[0], 0.5, 1e-12);
  EXPECT_NEAR(a[2], 0.7, 1e-12);
}

TEST(ResourceVector, DimMismatchThrows) {
  ResourceVector a(3);
  const ResourceVector b(2);
  EXPECT_THROW(a.add(b), std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(a.fits(b), std::invalid_argument);
}

TEST(ResourceVector, FitsIsComponentwise) {
  const ResourceVector cap{0.5, 0.5};
  EXPECT_TRUE(cap.fits({0.5, 0.4}));
  EXPECT_FALSE(cap.fits({0.51, 0.1}));
  EXPECT_FALSE(cap.fits({0.1, 0.6}));
}

TEST(ResourceVector, FitsToleratesFloatNoise) {
  ResourceVector cap{1.0, 1.0};
  // Simulate accumulated noise from add/subtract cycles.
  cap.subtract({1e-12, 0.0});
  EXPECT_TRUE(cap.fits({1.0, 1.0}));
}

TEST(ResourceVector, MaxComponentAndClamp) {
  ResourceVector v{0.2, -0.1, 1.4};
  EXPECT_DOUBLE_EQ(v.max_component(), 1.4);
  v.clamp(0.0, 1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(ResourceVector, ToStringMentionsAllComponents) {
  const ResourceVector v{0.25, 0.75};
  const std::string s = v.to_string();
  EXPECT_NE(s.find("0.25"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

TEST(Job, ValidationRules) {
  Job j;
  j.id = 1;
  j.arrival = 10.0;
  j.duration = 60.0;
  j.demand = ResourceVector{0.1, 0.2, 0.3};
  EXPECT_NO_THROW(j.validate(3));
  EXPECT_THROW(j.validate(2), std::invalid_argument);  // wrong dims

  Job bad = j;
  bad.duration = 0.0;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.arrival = -1.0;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.demand[1] = 1.5;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.demand[0] = -0.1;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
}

TEST(JobRecord, LatencyAndWait) {
  JobRecord r;
  r.arrival = 10.0;
  r.start = 25.0;
  r.finish = 85.0;
  EXPECT_DOUBLE_EQ(r.latency(), 75.0);
  EXPECT_DOUBLE_EQ(r.wait(), 15.0);
}

TEST(TimeConstants, AreConsistent) {
  EXPECT_DOUBLE_EQ(kSecondsPerDay, 24.0 * kSecondsPerHour);
  EXPECT_DOUBLE_EQ(kSecondsPerWeek, 7.0 * kSecondsPerDay);
}

}  // namespace
}  // namespace hcrl::sim
